#include "src/dist/transport.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <stdexcept>

#include "src/ipc/endpoint.hpp"
#include "src/util/process_exit.hpp"

namespace nsc::dist {

Spawned spawn_ranks(int nranks) {
  if (nranks < 1) throw std::invalid_argument("dist: nranks must be >= 1");
  const auto n = static_cast<std::size_t>(nranks);

  // Create the whole mesh up front so every child inherits every fd and can
  // close exactly the ones it does not own — a stray copy of a channel end
  // in a sibling would defeat EOF-based death detection.
  std::vector<std::array<int, 2>> parent_pair(n);  // [0] = coordinator end, [1] = rank end.
  for (auto& pr : parent_pair) {
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, pr.data()) != 0) {
      throw std::runtime_error("dist: socketpair failed");
    }
  }
  // peer_pair[i][j] for j > i: [0] is rank i's end, [1] is rank j's end.
  std::vector<std::vector<std::array<int, 2>>> peer_pair(n);
  for (std::size_t i = 0; i < n; ++i) {
    peer_pair[i].assign(n, {-1, -1});
    for (std::size_t j = i + 1; j < n; ++j) {
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, peer_pair[i][j].data()) != 0) {
        throw std::runtime_error("dist: socketpair failed");
      }
    }
  }

  std::vector<int> pids;
  pids.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error("dist: fork failed");
    if (pid == 0) {
      Spawned s;
      s.rank = static_cast<int>(r);
      s.peers.resize(n);
      for (std::size_t x = 0; x < n; ++x) {
        ::close(parent_pair[x][0]);
        if (x == r) {
          s.to_parent = Channel(parent_pair[x][1]);
        } else {
          ::close(parent_pair[x][1]);
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
          if (i == r) {
            s.peers[j] = Channel(peer_pair[i][j][0]);
            ::close(peer_pair[i][j][1]);
          } else if (j == r) {
            s.peers[i] = Channel(peer_pair[i][j][1]);
            ::close(peer_pair[i][j][0]);
          } else {
            ::close(peer_pair[i][j][0]);
            ::close(peer_pair[i][j][1]);
          }
        }
      }
      return s;
    }
    pids.push_back(static_cast<int>(pid));
  }

  Spawned s;
  s.pids = std::move(pids);
  s.to_rank.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    s.to_rank.emplace_back(parent_pair[r][0]);
    ::close(parent_pair[r][1]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      ::close(peer_pair[i][j][0]);
      ::close(peer_pair[i][j][1]);
    }
  }
  return s;
}

void exit_rank_process(int status) noexcept { util::exit_process_nounwind(status); }

int reap_rank(int pid) { return ipc::reap_process(pid); }

int reap_rank_deadline(int pid, int deadline_ms) {
  return ipc::reap_process_deadline(pid, deadline_ms);
}

void kill_rank_process(int pid) { ipc::signal_process(pid, SIGKILL); }

void stop_rank_process(int pid) { ipc::signal_process(pid, SIGSTOP); }

void wedge_rank_process() { ipc::wedge_forever(); }

}  // namespace nsc::dist
