#include "src/dist/rank.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "src/compass/partition.hpp"
#include "src/compass/simulator.hpp"
#include "src/core/input_schedule.hpp"
#include "src/dist/protocol.hpp"
#include "src/obs/obs.hpp"
#include "src/util/bitrow.hpp"

namespace nsc::dist {

namespace {

using WordDelivery = compass::Simulator::WordDelivery;

/// Cumulative totals a rank reports deltas of. Captured after every report
/// (and after a checkpoint load, so restored absolute values are excluded).
struct Totals {
  std::uint64_t spikes = 0, sops = 0, axon_events = 0, neuron_updates = 0, dropped = 0;
  std::uint64_t fault_dropped = 0, messages = 0, message_bytes = 0;
  std::uint64_t cores_visited = 0, cores_skipped = 0, events_delivered = 0;
  std::uint64_t compute_ns = 0, exchange_ns = 0, dist_messages = 0, dist_bytes = 0;
};

struct RankState {
  compass::Simulator* sim = nullptr;
  std::vector<compass::CoreRange> shards;
  std::vector<std::uint8_t> peer_alive;
  // Rank-loop-owned accumulators (cumulative; reported as deltas).
  std::uint64_t exchange_ns = 0;
  std::uint64_t dist_messages = 0;
  std::uint64_t dist_bytes = 0;
  std::uint64_t wire_dropped = 0;  ///< In-flight axon events lost to peer death.
  Totals base;
};

Totals capture(const RankState& st) {
  const core::KernelStats& ks = st.sim->stats();
  const obs::Registry& m = st.sim->metrics();
  Totals t;
  t.spikes = ks.spikes;
  t.sops = ks.sops;
  t.axon_events = ks.axon_events;
  t.neuron_updates = ks.neuron_updates;
  t.dropped = ks.dropped_spikes;
  t.fault_dropped = m.counter_value("fault.spikes_dropped") + st.wire_dropped;
  t.messages = m.counter_value("messages");
  t.message_bytes = m.counter_value("message_bytes");
  t.cores_visited = m.counter_value("cores_visited");
  t.cores_skipped = m.counter_value("cores_skipped");
  t.events_delivered = m.counter_value("events_delivered");
  for (const std::uint64_t ns : st.sim->partition_compute_ns()) t.compute_ns += ns;
  t.exchange_ns = st.exchange_ns;
  t.dist_messages = st.dist_messages;
  t.dist_bytes = st.dist_bytes;
  return t;
}

bool send_report(RankState& st, Channel& parent) {
  const Totals cur = capture(st);
  const Totals& b = st.base;
  RankReport r;
  r.spikes = cur.spikes - b.spikes;
  r.sops = cur.sops - b.sops;
  r.axon_events = cur.axon_events - b.axon_events;
  r.neuron_updates = cur.neuron_updates - b.neuron_updates;
  r.dropped_spikes = cur.dropped - b.dropped;
  r.fault_dropped = cur.fault_dropped - b.fault_dropped;
  r.messages = cur.messages - b.messages;
  r.message_bytes = cur.message_bytes - b.message_bytes;
  r.cores_visited = cur.cores_visited - b.cores_visited;
  r.cores_skipped = cur.cores_skipped - b.cores_skipped;
  r.events_delivered = cur.events_delivered - b.events_delivered;
  r.compute_ns = cur.compute_ns - b.compute_ns;
  r.exchange_ns = cur.exchange_ns - b.exchange_ns;
  r.dist_messages = cur.dist_messages - b.dist_messages;
  r.dist_bytes = cur.dist_bytes - b.dist_bytes;
  st.base = cur;
  return parent.send_frame(static_cast<std::uint32_t>(MsgKind::kReport), &r, sizeof r);
}

/// A peer died: its cores fail exactly like a fault-campaign kill, so every
/// spike aimed at them from here on drops into fault.spikes_dropped instead
/// of wedging the exchange.
void on_peer_death(RankState& st, int peer) {
  if (st.peer_alive[static_cast<std::size_t>(peer)] == 0) return;
  st.peer_alive[static_cast<std::size_t>(peer)] = 0;
  const compass::CoreRange r = st.shards[static_cast<std::size_t>(peer)];
  for (core::CoreId c = r.begin; c < r.end; ++c) st.sim->fail_core(c);
}

/// True when the fault-injection hooks of `cfg` apply to this incarnation
/// of the rank fleet (the Supervisor bumps `incarnation` on respawn, so a
/// one-shot failure cannot refire after the rollback replays its tick).
bool hooks_armed(const Config& cfg) {
  return cfg.hook_incarnation < 0 || cfg.hook_incarnation == cfg.incarnation;
}

/// Fires the per-tick failure hooks configured for (phase, tick) — suicide,
/// second suicide, and hang. Never returns if a hook fires.
void fire_tick_hooks(const Config& cfg, int rank, int phase, core::Tick t) {
  if (!hooks_armed(cfg) || phase != cfg.suicide_phase) return;
  if (rank == cfg.suicide_rank && t == cfg.suicide_tick) exit_rank_process(3);
  if (rank == cfg.suicide2_rank && t == cfg.suicide2_tick) exit_rank_process(3);
  if (rank == cfg.hang_rank && t == cfg.hang_tick) wedge_rank_process();
}

/// One run segment: nticks of dist_tick + peer exchange (+ per-tick spike
/// frames to the coordinator when recording). Returns false when the parent
/// channel died (the rank should exit).
bool run_segment(RankState& st, const Config& cfg, int rank, Channel& parent, PeerPump& pump,
                 core::Tick nticks, bool record, const core::InputSchedule& inputs) {
  compass::Simulator& sim = *st.sim;
  const int R = cfg.ranks;
  const core::Tick start = sim.now();
  std::vector<Frame> out(static_cast<std::size_t>(R));
  std::vector<Frame> in;
  std::vector<int> newly_dead;
  std::vector<core::Spike> spikes;
  std::vector<std::uint8_t> tick_payload;
  // Peer exchange gets half the coordinator's deadline: a rank stalled on a
  // hung peer must unwedge itself (degrading the peer) before its own
  // silence makes the coordinator kill *it* as collateral.
  const int pump_deadline_ms =
      cfg.rank_deadline_ms > 0 ? std::max(1, cfg.rank_deadline_ms / 2) : 0;
  // While recording, the per-tick kTickSpikes frames are the liveness
  // signal; otherwise send explicit heartbeats, throttled to one per
  // deadline/4 so a long unsupervised segment cannot flood the socket.
  const bool heartbeats = !record && cfg.rank_deadline_ms > 0;
  const std::uint64_t hb_interval_ns =
      static_cast<std::uint64_t>(cfg.rank_deadline_ms) * 1000000ULL / 4;
  std::uint64_t last_hb = obs::now_ns();
  for (core::Tick i = 0; i < nticks; ++i) {
    const core::Tick t = start + i;
    fire_tick_hooks(cfg, rank, 0, t);
    sim.dist_tick(t, &inputs, record);
    fire_tick_hooks(cfg, rank, 1, t);

    // Exchange: exactly one kSpikeBatch per live peer, both directions,
    // poll-driven. Peers consume tick-t batches before computing t+1 (axonal
    // delay >= 1 guarantees nothing in them is due earlier), so no barrier
    // is needed and neighbours may skew by a tick.
    const std::uint64_t x0 = obs::now_ns();
    std::vector<std::uint64_t> batch_bits(static_cast<std::size_t>(R), 0);
    for (int r = 0; r < R; ++r) {
      if (r == rank || st.peer_alive[static_cast<std::size_t>(r)] == 0) continue;
      const std::vector<WordDelivery>& words = sim.dist_outgoing(r);
      Frame& f = out[static_cast<std::size_t>(r)];
      f.kind = static_cast<std::uint32_t>(MsgKind::kSpikeBatch);
      f.payload.clear();
      put_pod(f.payload, static_cast<std::int64_t>(t));
      for (const WordDelivery& w : words) put_pod(f.payload, w);
      for (const WordDelivery& w : words) {
        batch_bits[static_cast<std::size_t>(r)] +=
            static_cast<std::uint64_t>(util::popcount64(w.bits));
      }
      st.dist_messages += 1;
      st.dist_bytes += f.payload.size();
    }
    pump.round(out, in, newly_dead, pump_deadline_ms);
    for (int r = 0; r < R; ++r) {
      Frame& f = in[static_cast<std::size_t>(r)];
      if (f.kind != static_cast<std::uint32_t>(MsgKind::kSpikeBatch)) continue;
      std::size_t off = 0;
      const auto peer_tick = get_pod<std::int64_t>(f.payload, off);
      if (peer_tick != t) throw std::runtime_error("dist: peer tick skew exceeded the window");
      const std::size_t nwords = (f.payload.size() - off) / sizeof(WordDelivery);
      const std::vector<WordDelivery> words = get_pod_array<WordDelivery>(f.payload, off, nwords);
      sim.dist_deliver(words.data(), words.size());
    }
    for (const int r : newly_dead) {
      // The batch we could not hand over is lost in flight: account it like
      // the pending deliveries a fail_core drops, then fail the peer's cores.
      st.wire_dropped += batch_bits[static_cast<std::size_t>(r)];
      on_peer_death(st, r);
    }
    sim.dist_clear_outgoing();
    st.exchange_ns += obs::now_ns() - x0;
    fire_tick_hooks(cfg, rank, 2, t);

    if (heartbeats && obs::now_ns() - last_hb >= hb_interval_ns) {
      if (!parent.send_frame(static_cast<std::uint32_t>(MsgKind::kHeartbeat), nullptr, 0)) {
        return false;
      }
      last_hb = obs::now_ns();
    }
    if (record) {
      spikes.clear();
      sim.dist_drain_spikes(spikes);
      tick_payload.clear();
      put_pod(tick_payload, static_cast<std::int64_t>(t));
      put_pod(tick_payload, static_cast<std::uint32_t>(spikes.size()));
      put_pod(tick_payload, std::uint32_t{0});
      for (const core::Spike& s : spikes) put_pod(tick_payload, s);
      if (!parent.send_frame(static_cast<std::uint32_t>(MsgKind::kTickSpikes),
                             tick_payload.data(), tick_payload.size())) {
        return false;
      }
    }
  }
  sim.dist_end_run(nticks);
  return send_report(st, parent);
}

}  // namespace

int rank_main(const core::Network& net, const Config& cfg, Spawned&& spawned) {
  const int rank = spawned.rank;
  compass::Config scfg;
  scfg.threads = cfg.threads_per_rank;
  scfg.collect_phase_metrics = cfg.collect_phase_metrics;
  scfg.rank = rank;
  scfg.ranks = cfg.ranks;
  compass::Simulator sim(net, scfg);

  RankState st;
  st.sim = &sim;
  st.shards = compass::partition_balanced(net, cfg.ranks);
  st.peer_alive.assign(static_cast<std::size_t>(cfg.ranks), 1);
  st.base = capture(st);

  Channel& parent = spawned.to_parent;
  PeerPump pump(&spawned.peers, rank);

  int saves_seen = 0;
  Frame cmd;
  while (parent.recv_frame(cmd)) {
    switch (static_cast<MsgKind>(cmd.kind)) {
      case MsgKind::kRun: {
        std::size_t off = 0;
        const auto nticks = get_pod<std::int64_t>(cmd.payload, off);
        const auto record = get_pod<std::uint8_t>(cmd.payload, off);
        off += 3;  // padding
        const auto nevents = get_pod<std::uint32_t>(cmd.payload, off);
        const std::vector<core::InputSpike> events =
            get_pod_array<core::InputSpike>(cmd.payload, off, nevents);
        core::InputSchedule inputs;
        for (const core::InputSpike& e : events) inputs.add(e);
        inputs.finalize();
        if (!run_segment(st, cfg, rank, parent, pump, nticks, record != 0, inputs)) {
          return 0;
        }
        break;
      }
      case MsgKind::kFailCore: {
        std::size_t off = 0;
        sim.fail_core(get_pod<std::uint32_t>(cmd.payload, off));
        if (!send_report(st, parent)) return 0;
        break;
      }
      case MsgKind::kFailLink: {
        std::size_t off = 0;
        const auto chip = get_pod<std::int32_t>(cmd.payload, off);
        const auto dir = get_pod<std::int32_t>(cmd.payload, off);
        sim.fail_link(chip, dir);
        if (!send_report(st, parent)) return 0;
        break;
      }
      case MsgKind::kSave: {
        ++saves_seen;
        if (hooks_armed(cfg) && rank == cfg.die_on_save_rank &&
            saves_seen == cfg.die_on_save_seq) {
          exit_rank_process(3);  // Death mid-checkpoint-collection.
        }
        std::ostringstream os(std::ios::binary);
        sim.save_checkpoint(os);
        const std::string blob = os.str();
        if (!parent.send_frame(static_cast<std::uint32_t>(MsgKind::kBlob), blob.data(),
                               blob.size())) {
          return 0;
        }
        break;
      }
      case MsgKind::kLoad: {
        std::istringstream is(
            std::string(reinterpret_cast<const char*>(cmd.payload.data()), cmd.payload.size()),
            std::ios::binary);
        sim.load_checkpoint(is);
        // Peers that died stay dead across a restore: re-fail their cores in
        // case the snapshot predates the death (no-ops otherwise), then
        // rebase so the restored absolute values never report as deltas.
        for (int r = 0; r < cfg.ranks; ++r) {
          if (r != rank && st.peer_alive[static_cast<std::size_t>(r)] == 0) {
            const compass::CoreRange cr = st.shards[static_cast<std::size_t>(r)];
            for (core::CoreId c = cr.begin; c < cr.end; ++c) sim.fail_core(c);
          }
        }
        st.base = capture(st);
        if (!send_report(st, parent)) return 0;
        break;
      }
      case MsgKind::kShutdown:
        return 0;
      default:
        return 1;  // Protocol violation: bail out rather than guess.
    }
  }
  return 0;  // Coordinator vanished: exit quietly.
}

}  // namespace nsc::dist
