#include "src/dist/coordinator.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

#include "src/core/input_schedule.hpp"
#include "src/core/snapshot.hpp"
#include "src/dist/protocol.hpp"
#include "src/util/bitrow.hpp"

namespace nsc::dist {

using core::CoreId;
using core::Tick;

namespace {
constexpr int kDelaySlots = core::kMaxDelay + 1;
}

Coordinator::Coordinator(const core::Network& net, Config cfg)
    : net_(net), cfg_(cfg), dead_links_(net.geom.chips()) {
  if (cfg.ranks < 1) throw std::invalid_argument("dist: ranks must be >= 1");
  if (cfg.threads_per_rank < 1) {
    throw std::invalid_argument("dist: threads_per_rank must be >= 1");
  }
  shards_ = compass::partition_balanced(net, cfg.ranks);

  ctr_messages_ = &obs_.counter("messages");
  ctr_message_bytes_ = &obs_.counter("message_bytes");
  ctr_cores_failed_ = &obs_.counter("fault.cores_failed");
  ctr_links_failed_ = &obs_.counter("fault.links_failed");
  ctr_fault_dropped_ = &obs_.counter("fault.spikes_dropped");
  ctr_cores_visited_ = &obs_.counter("cores_visited");
  ctr_cores_skipped_ = &obs_.counter("cores_skipped");
  ctr_events_delivered_ = &obs_.counter("events_delivered");
  ctr_dist_messages_ = &obs_.counter("dist.messages");
  ctr_dist_bytes_ = &obs_.counter("dist.bytes");
  ctr_dist_exchange_ns_ = &obs_.counter("dist.exchange_ns");
  ctr_heartbeats_missed_ = &obs_.counter("dist.heartbeats_missed");

  const auto ncores = static_cast<std::size_t>(net.geom.total_cores());
  dead_.assign(ncores, 0);
  for (std::size_t c = 0; c < ncores; ++c) {
    if (net.core(static_cast<CoreId>(c)).disabled != 0) dead_[c] = 1;
  }
  rank_compute_ns_.assign(static_cast<std::size_t>(cfg.ranks), 0);
  rank_exchange_ns_.assign(static_cast<std::size_t>(cfg.ranks), 0);
  rank_work_.assign(static_cast<std::size_t>(cfg.ranks), 0);

  Spawned s = spawn_ranks(cfg.ranks);
  if (s.is_child()) {
    // Rank process: run the command loop, then leave without unwinding into
    // the caller's world (no atexit handlers, no test-framework teardown).
    exit_rank_process(rank_main(net, cfg, std::move(s)));
  }
  to_rank_ = std::move(s.to_rank);
  pids_ = std::move(s.pids);
  alive_.assign(static_cast<std::size_t>(cfg.ranks), 1);
  stopped_.assign(static_cast<std::size_t>(cfg.ranks), 0);
}

Coordinator::~Coordinator() {
  const std::uint32_t kind = static_cast<std::uint32_t>(MsgKind::kShutdown);
  for (int r = 0; r < cfg_.ranks; ++r) {
    if (alive_[static_cast<std::size_t>(r)] != 0) {
      to_rank_[static_cast<std::size_t>(r)].send_frame(kind, nullptr, 0);
      to_rank_[static_cast<std::size_t>(r)].close();
    }
  }
  for (int r = 0; r < cfg_.ranks; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    if (pids_[ri] <= 0) continue;
    // A stopped (SIGSTOP) or wedged rank will never act on kShutdown: kill
    // it outright, and bound the reap so teardown can never hang even if a
    // rank ignores the shutdown for any other reason.
    if (stopped_[ri] != 0) kill_rank_process(pids_[ri]);
    reap_rank_deadline(pids_[ri], /*deadline_ms=*/5000);
    pids_[ri] = -1;
  }
}

int Coordinator::live_ranks() const noexcept {
  int n = 0;
  for (const std::uint8_t a : alive_) n += a != 0 ? 1 : 0;
  return n;
}

double Coordinator::load_imbalance() const noexcept {
  std::uint64_t max = 0, sum = 0;
  for (const std::uint64_t ns : rank_compute_ns_) {
    max = std::max(max, ns);
    sum += ns;
  }
  if (sum == 0) return 0.0;
  const double mean = static_cast<double>(sum) / static_cast<double>(rank_compute_ns_.size());
  return static_cast<double>(max) / mean;
}

void Coordinator::on_rank_death(int r) {
  const auto ri = static_cast<std::size_t>(r);
  if (alive_[ri] == 0) return;
  alive_[ri] = 0;
  to_rank_[ri].close();
  reap_rank(pids_[ri]);
  pids_[ri] = -1;
  stopped_[ri] = 0;
  // The lost shard degrades exactly like a fault campaign killing its cores:
  // accounted, never silent (survivor ranks apply the same rule when they
  // observe the death on their own channels).
  for (CoreId c = shards_[ri].begin; c < shards_[ri].end; ++c) {
    if (dead_[c] == 0) {
      dead_[c] = 1;
      ++*ctr_cores_failed_;
    }
  }
}

void Coordinator::broadcast(MsgKind kind, const void* payload, std::size_t size) {
  for (int r = 0; r < cfg_.ranks; ++r) {
    if (alive_[static_cast<std::size_t>(r)] == 0) continue;
    if (!to_rank_[static_cast<std::size_t>(r)].send_frame(static_cast<std::uint32_t>(kind),
                                                          payload, size)) {
      on_rank_death(r);
    }
  }
}

bool Coordinator::recv_from_rank(int r, Frame& f) {
  const auto ri = static_cast<std::size_t>(r);
  for (;;) {
    const RecvStatus st = to_rank_[ri].recv_frame_deadline(f, cfg_.rank_deadline_ms);
    if (st == RecvStatus::kOk) {
      if (f.kind == static_cast<std::uint32_t>(MsgKind::kHeartbeat)) continue;
      return true;
    }
    if (st == RecvStatus::kClosed) {
      on_rank_death(r);
      return false;
    }
    // kTimeout: silent past the deadline with heartbeats enabled — the rank
    // is hung, not slow. Kill it (SIGKILL also resumes-to-kill a SIGSTOPped
    // process), absorb the death, and surface a catchable, recoverable
    // error instead of wedging the whole run.
    ++*ctr_heartbeats_missed_;
    kill_rank_process(pids_[ri]);
    on_rank_death(r);
    throw RankTimeout("dist: rank " + std::to_string(r) + " silent for more than " +
                      std::to_string(cfg_.rank_deadline_ms) + " ms (declared hung and killed)");
  }
}

void Coordinator::fold_report(int rank, const std::vector<std::uint8_t>& payload) {
  std::size_t off = 0;
  const auto rep = get_pod<RankReport>(payload, off);
  stats_.spikes += rep.spikes;
  stats_.sops += rep.sops;
  stats_.axon_events += rep.axon_events;
  stats_.neuron_updates += rep.neuron_updates;
  stats_.dropped_spikes += rep.dropped_spikes;
  *ctr_fault_dropped_ += rep.fault_dropped;
  *ctr_messages_ += rep.messages;
  *ctr_message_bytes_ += rep.message_bytes;
  *ctr_cores_visited_ += rep.cores_visited;
  *ctr_cores_skipped_ += rep.cores_skipped;
  *ctr_events_delivered_ += rep.events_delivered;
  *ctr_dist_messages_ += rep.dist_messages;
  *ctr_dist_bytes_ += rep.dist_bytes;
  *ctr_dist_exchange_ns_ += rep.exchange_ns;
  messages_total_ += rep.messages;
  rank_compute_ns_[static_cast<std::size_t>(rank)] += rep.compute_ns;
  rank_exchange_ns_[static_cast<std::size_t>(rank)] += rep.exchange_ns;
  rank_work_[static_cast<std::size_t>(rank)] += rep.sops + rep.axon_events + rep.neuron_updates;
}

void Coordinator::collect_reports() {
  for (int r = 0; r < cfg_.ranks; ++r) {
    if (alive_[static_cast<std::size_t>(r)] == 0) continue;
    Frame f;
    if (!recv_from_rank(r, f)) continue;
    if (f.kind != static_cast<std::uint32_t>(MsgKind::kReport)) {
      throw std::runtime_error("dist: expected a rank report frame");
    }
    fold_report(r, f.payload);
  }
}

void Coordinator::run(Tick nticks, const core::InputSchedule* inputs, core::SpikeSink* sink) {
  if (nticks <= 0) return;
  const bool record = sink != nullptr;

  std::vector<std::uint8_t> payload;
  put_pod(payload, static_cast<std::int64_t>(nticks));
  put_pod(payload, static_cast<std::uint8_t>(record ? 1 : 0));
  payload.insert(payload.end(), 3, 0);  // padding
  std::uint32_t nevents = 0;
  const std::size_t nevents_off = payload.size();
  put_pod(payload, nevents);
  if (inputs != nullptr) {
    for (Tick i = 0; i < nticks; ++i) {
      for (const core::InputSpike& s : inputs->at(now_ + i)) {
        put_pod(payload, s);
        ++nevents;
      }
    }
    std::memcpy(payload.data() + nevents_off, &nevents, sizeof nevents);
  }
  broadcast(MsgKind::kRun, payload.data(), payload.size());

  if (record) {
    // Canonical merge: shards are ascending contiguous core ranges and each
    // rank's per-tick batch is already (core, neuron)-ascending, so reading
    // the batches in rank order per tick reproduces the canonical stream.
    for (Tick i = 0; i < nticks; ++i) {
      const Tick t = now_ + i;
      for (int r = 0; r < cfg_.ranks; ++r) {
        if (alive_[static_cast<std::size_t>(r)] == 0) continue;
        Frame f;
        if (!recv_from_rank(r, f)) continue;
        if (f.kind != static_cast<std::uint32_t>(MsgKind::kTickSpikes)) {
          throw std::runtime_error("dist: expected a tick-spikes frame");
        }
        std::size_t off = 0;
        const auto tick = get_pod<std::int64_t>(f.payload, off);
        if (tick != t) throw std::runtime_error("dist: tick-spikes frame out of order");
        const auto count = get_pod<std::uint32_t>(f.payload, off);
        off += sizeof(std::uint32_t);  // padding
        const std::vector<core::Spike> spikes =
            get_pod_array<core::Spike>(f.payload, off, count);
        for (const core::Spike& s : spikes) sink->on_spike(s.tick, s.core, s.neuron);
      }
      sink->on_tick_end(t);
    }
  }

  collect_reports();
  stats_.ticks += static_cast<std::uint64_t>(nticks);
  now_ += nticks;
}

bool Coordinator::fail_core(CoreId c) {
  if (c >= static_cast<CoreId>(net_.geom.total_cores()) || dead_[c] != 0) return false;
  const std::uint32_t payload = c;
  broadcast(MsgKind::kFailCore, &payload, sizeof payload);
  collect_reports();
  dead_[c] = 1;
  ++*ctr_cores_failed_;
  return true;
}

bool Coordinator::fail_rank(int rank, bool hang) {
  if (rank < 0 || rank >= cfg_.ranks) return false;
  const auto ri = static_cast<std::size_t>(rank);
  if (alive_[ri] == 0 || pids_[ri] <= 0) return false;
  if (hang) {
    stop_rank_process(pids_[ri]);
    stopped_[ri] = 1;
  } else {
    kill_rank_process(pids_[ri]);
  }
  return true;
}

bool Coordinator::fail_link(int chip, int dir) {
  if (net_.geom.chips() <= 1) return false;
  if (chip < 0 || chip >= net_.geom.chips() || dir < 0 || dir >= 4) return false;
  if (dead_links_.blocked(chip, dir)) return false;
  std::vector<std::uint8_t> payload;
  put_pod(payload, static_cast<std::int32_t>(chip));
  put_pod(payload, static_cast<std::int32_t>(dir));
  broadcast(MsgKind::kFailLink, payload.data(), payload.size());
  collect_reports();
  dead_links_.mark(chip, dir);
  ++*ctr_links_failed_;
  return true;
}

void Coordinator::save_checkpoint(std::ostream& os) const {
  // Channel I/O mutates transport state (and a rank death discovered here
  // must be absorbed); checkpointing is still logically const — the
  // simulated state does not advance.
  auto* self = const_cast<Coordinator*>(this);
  self->broadcast(MsgKind::kSave, nullptr, 0);

  core::Snapshot base;
  bool have_base = false;
  for (int r = 0; r < cfg_.ranks; ++r) {
    if (alive_[static_cast<std::size_t>(r)] == 0) continue;
    Frame f;
    if (!self->recv_from_rank(r, f)) continue;
    if (f.kind != static_cast<std::uint32_t>(MsgKind::kBlob)) {
      throw std::runtime_error("dist: expected a checkpoint blob frame");
    }
    std::istringstream is(
        std::string(reinterpret_cast<const char*>(f.payload.data()), f.payload.size()),
        std::ios::binary);
    core::Snapshot snap = core::load_snapshot(is);
    if (!have_base) {
      base = std::move(snap);
      have_base = true;
      continue;
    }
    // Splice the shard-owned slices: rank r is authoritative for exactly its
    // core range's potentials and delay rings.
    const compass::CoreRange range = shards_[static_cast<std::size_t>(r)];
    const std::size_t v0 = static_cast<std::size_t>(range.begin) * core::kCoreSize;
    const std::size_t v1 = static_cast<std::size_t>(range.end) * core::kCoreSize;
    std::copy(snap.v.begin() + static_cast<std::ptrdiff_t>(v0),
              snap.v.begin() + static_cast<std::ptrdiff_t>(v1),
              base.v.begin() + static_cast<std::ptrdiff_t>(v0));
    const std::size_t w0 =
        static_cast<std::size_t>(range.begin) * kDelaySlots * util::BitRow256::kWords;
    const std::size_t w1 =
        static_cast<std::size_t>(range.end) * kDelaySlots * util::BitRow256::kWords;
    std::copy(snap.delay_words.begin() + static_cast<std::ptrdiff_t>(w0),
              snap.delay_words.begin() + static_cast<std::ptrdiff_t>(w1),
              base.delay_words.begin() + static_cast<std::ptrdiff_t>(w0));
  }
  if (!have_base) {
    throw std::runtime_error("dist: cannot checkpoint with every rank dead");
  }

  // The coordinator's bookkeeping is authoritative for everything global.
  base.backend = core::SnapshotBackend::kCompass;
  base.tick = now_;
  base.stats = stats_;
  base.dead_cores.assign(dead_.begin(), dead_.end());
  const int chips = net_.geom.chips();
  base.dead_links.assign(static_cast<std::size_t>(chips) * 4, 0);
  for (int ch = 0; ch < chips; ++ch) {
    for (int d = 0; d < 4; ++d) {
      base.dead_links[static_cast<std::size_t>(ch) * 4 + static_cast<std::size_t>(d)] =
          dead_links_.blocked(ch, d) ? 1 : 0;
    }
  }
  base.extras.clear();
  base.set_extra("messages", messages_total_);
  base.set_extra("fault.cores_failed", *ctr_cores_failed_);
  base.set_extra("fault.links_failed", *ctr_links_failed_);
  base.set_extra("fault.spikes_dropped", *ctr_fault_dropped_);
  core::save_snapshot(base, os);
}

void Coordinator::load_checkpoint(std::istream& is) {
  const core::Snapshot snap = core::load_snapshot(is);
  if (snap.geom != net_.geom) {
    throw std::runtime_error("checkpoint geometry does not match this simulator's network");
  }
  if (snap.net_seed != net_.seed) {
    throw std::runtime_error("checkpoint was taken against a different network (seed mismatch)");
  }
  std::ostringstream os(std::ios::binary);
  core::save_snapshot(snap, os);
  const std::string blob = os.str();
  broadcast(MsgKind::kLoad, blob.data(), blob.size());
  collect_reports();  // Acks carry zero deltas (ranks rebase after loading).

  now_ = snap.tick;
  stats_ = snap.stats;
  messages_total_ = snap.extra("messages");
  *ctr_cores_failed_ = snap.extra("fault.cores_failed");
  *ctr_links_failed_ = snap.extra("fault.links_failed");
  *ctr_fault_dropped_ = snap.extra("fault.spikes_dropped");

  const auto ncores = static_cast<std::size_t>(net_.geom.total_cores());
  dead_.assign(ncores, 0);
  for (std::size_t c = 0; c < ncores; ++c) {
    const bool static_dead = net_.core(static_cast<CoreId>(c)).disabled != 0;
    if (static_dead || (!snap.dead_cores.empty() && snap.dead_cores[c] != 0)) dead_[c] = 1;
  }
  dead_links_ = noc::LinkFaultSet(net_.geom.chips());
  for (int ch = 0; ch < net_.geom.chips(); ++ch) {
    for (int d = 0; d < 4; ++d) {
      const std::size_t idx = static_cast<std::size_t>(ch) * 4 + static_cast<std::size_t>(d);
      if (idx < snap.dead_links.size() && snap.dead_links[idx] != 0) dead_links_.mark(ch, d);
    }
  }
  // Ranks that died stay dead across a restore, even one that predates the
  // death: their cores fail again (the ranks re-apply the same rule).
  for (int r = 0; r < cfg_.ranks; ++r) {
    if (alive_[static_cast<std::size_t>(r)] != 0) continue;
    for (CoreId c = shards_[static_cast<std::size_t>(r)].begin;
         c < shards_[static_cast<std::size_t>(r)].end; ++c) {
      if (dead_[c] == 0) {
        dead_[c] = 1;
        ++*ctr_cores_failed_;
      }
    }
  }
}

}  // namespace nsc::dist
