#include "src/corelet/corelet.hpp"

#include <cassert>
#include <stdexcept>

namespace nsc::corelet {

int Corelet::add_core() {
  cores_.emplace_back();
  core::CoreSpec& cs = cores_.back();
  for (auto& p : cs.neuron) {
    p.enabled = 0;
    p.target = core::AxonTarget{};
  }
  return static_cast<int>(cores_.size()) - 1;
}

void Corelet::connect(OutputPin src, InputPin dst, int delay) {
  if (src.core < 0 || src.core >= core_count() || dst.core < 0 || dst.core >= core_count()) {
    throw std::out_of_range("corelet connect: core index out of range");
  }
  if (delay < core::kMinDelay || delay > core::kMaxDelay) {
    throw std::out_of_range("corelet connect: delay out of [1,15]");
  }
  core::NeuronParams& p = core(src.core).neuron[src.neuron];
  // Local-index encoding: resolved to a physical CoreId at placement.
  p.target.core = static_cast<core::CoreId>(dst.core);
  p.target.axon = dst.axon;
  p.target.delay = static_cast<std::uint8_t>(delay);
}

int Corelet::add_input(InputPin pin) {
  assert(pin.core >= 0 && pin.core < core_count());
  inputs_.push_back(pin);
  return static_cast<int>(inputs_.size()) - 1;
}

int Corelet::add_output(OutputPin pin) {
  assert(pin.core >= 0 && pin.core < core_count());
  outputs_.push_back(pin);
  return static_cast<int>(outputs_.size()) - 1;
}

int Corelet::absorb(Corelet child) {
  const int offset = core_count();
  for (auto& cs : child.cores_) {
    // Rebase internal connections into the parent's index space.
    for (auto& p : cs.neuron) {
      if (p.target.valid()) {
        p.target.core += static_cast<core::CoreId>(offset);
      }
    }
    cores_.push_back(std::move(cs));
  }
  return offset;
}

std::uint64_t Corelet::enabled_neurons() const {
  std::uint64_t n = 0;
  for (const auto& cs : cores_) {
    for (const auto& p : cs.neuron) n += p.enabled ? 1 : 0;
  }
  return n;
}

}  // namespace nsc::corelet
