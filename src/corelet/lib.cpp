#include "src/corelet/lib.hpp"

#include <cassert>
#include <stdexcept>

namespace nsc::corelet {

using core::kCoreSize;

Corelet make_splitter(int fanout) {
  if (fanout < 1 || fanout > kCoreSize) throw std::out_of_range("splitter fanout");
  Corelet c("splitter");
  const int k = c.add_core();
  auto& cs = c.core(k);
  for (int j = 0; j < fanout; ++j) {
    cs.crossbar.set(0, j);
    core::NeuronParams& p = cs.neuron[j];
    p.enabled = 1;
    p.weight[0] = 1;
    p.threshold = 1;
    p.reset_mode = core::ResetMode::kAbsolute;
    c.add_output({k, static_cast<std::uint16_t>(j)});
  }
  c.add_input({k, 0});
  return c;
}

Corelet make_relay(int width) {
  if (width < 1 || width > kCoreSize) throw std::out_of_range("relay width");
  Corelet c("relay");
  const int k = c.add_core();
  auto& cs = c.core(k);
  for (int j = 0; j < width; ++j) {
    cs.crossbar.set(j, j);
    core::NeuronParams& p = cs.neuron[j];
    p.enabled = 1;
    p.weight[0] = 1;
    p.threshold = 1;
    c.add_input({k, static_cast<std::uint16_t>(j)});
    c.add_output({k, static_cast<std::uint16_t>(j)});
  }
  return c;
}

Corelet make_delay_line(int width, int total_delay) {
  if (total_delay < 0) throw std::out_of_range("delay line length");
  // A relay neuron fires in the same tick its axon event arrives, so chain
  // latency comes entirely from the axonal delays *between* relays: a chain
  // of R relays realizes any delay expressible as R−1 hops of 1..15 ticks.
  Corelet c("delay_line");
  int prev = c.absorb(make_relay(width));
  for (int i = 0; i < width; ++i) {
    c.add_input(Corelet::offset_pin(InputPin{0, static_cast<std::uint16_t>(i)}, prev));
  }
  int remaining = total_delay;
  while (remaining > 0) {
    const int hop = std::min(remaining, static_cast<int>(core::kMaxDelay));
    const int next = c.absorb(make_relay(width));
    for (int i = 0; i < width; ++i) {
      c.connect(Corelet::offset_pin(OutputPin{0, static_cast<std::uint16_t>(i)}, prev),
                Corelet::offset_pin(InputPin{0, static_cast<std::uint16_t>(i)}, next), hop);
    }
    prev = next;
    remaining -= hop;
  }
  for (int i = 0; i < width; ++i) {
    c.add_output(Corelet::offset_pin(OutputPin{0, static_cast<std::uint16_t>(i)}, prev));
  }
  return c;
}

Corelet make_wta(const WtaParams& p) {
  if (p.channels < 1 || 2 * p.channels > kCoreSize) throw std::out_of_range("wta channels");
  Corelet c("wta");
  const int k = c.add_core();
  auto& cs = c.core(k);
  const int n = p.channels;
  // A neuron has exactly one target, and the winner's target is consumed by
  // the recurrent loop — so each winner drives a *feedback axon* whose
  // crossbar row fans out to (a) every other winner (inhibition) and (b) a
  // dedicated output-copy neuron whose own target stays free for callers.
  // The per-neuron type-1 weight is negative on winners and positive on
  // copies, which is precisely what per-neuron axon-type weights are for.
  for (int i = 0; i < n; ++i) {
    cs.axon_type[static_cast<std::size_t>(i)] = 0;      // feed-forward excitation
    cs.axon_type[static_cast<std::size_t>(n + i)] = 1;  // recurrent feedback
  }
  for (int j = 0; j < n; ++j) {
    // Winner neuron j.
    cs.crossbar.set(j, j);
    for (int i = 0; i < n; ++i) {
      if (i != j) cs.crossbar.set(n + i, j);
    }
    core::NeuronParams& winner = cs.neuron[j];
    winner.enabled = 1;
    winner.weight[0] = p.excite;
    winner.weight[1] = p.inhibit;
    winner.leak = p.leak;
    winner.threshold = p.threshold;
    winner.neg_threshold = 2 * p.threshold;  // bounded suppression depth
    winner.negative_mode = core::NegativeMode::kSaturate;
    winner.reset_mode = core::ResetMode::kAbsolute;
    c.connect(OutputPin{k, static_cast<std::uint16_t>(j)},
              InputPin{k, static_cast<std::uint16_t>(n + j)}, 1);

    // Output copy neuron n + j relays the winner's spikes outward.
    cs.crossbar.set(n + j, n + j);
    core::NeuronParams& copy = cs.neuron[n + j];
    copy.enabled = 1;
    copy.weight[1] = 1;
    copy.threshold = 1;
    copy.reset_mode = core::ResetMode::kAbsolute;

    c.add_input({k, static_cast<std::uint16_t>(j)});
    c.add_output({k, static_cast<std::uint16_t>(n + j)});
  }
  return c;
}

}  // namespace nsc::corelet
