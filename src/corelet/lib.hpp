// Reusable corelets: the seed of the paper's "corelet library" (§IV-A).
//
// Building blocks every application network needs:
//   splitter    — fan one spike stream out to N copies (a neuron has exactly
//                 one target, so fan-out beyond a core's local crossbar is
//                 built from splitter cores),
//   relay       — identity passthrough (placement/pipelining glue),
//   delay line  — delays beyond the 15-tick axonal maximum, built from
//                 chained relays,
//   WTA         — winner-take-all via recurrent cross-inhibition, the
//                 mechanism behind the saccade corelet's region selection.
#pragma once

#include "src/corelet/corelet.hpp"

namespace nsc::corelet {

/// One core that replicates one input axon to `fanout` output neurons
/// (fanout ≤ 256). Inputs: 1 pin; outputs: `fanout` pins.
[[nodiscard]] Corelet make_splitter(int fanout);

/// One core passing `width` independent channels through unchanged
/// (width ≤ 256). Inputs/outputs: `width` pins.
[[nodiscard]] Corelet make_relay(int width);

/// Delays `width` channels by `total_delay` ticks (any positive value);
/// chains relays when total_delay > 15. Inputs/outputs: `width` pins.
[[nodiscard]] Corelet make_delay_line(int width, int total_delay);

/// Winner-take-all over `n` channels (n ≤ 128: n input axons + n feedback
/// axons share one core). Each winner neuron integrates its input (+weight)
/// and is inhibited by every *other* channel's recent winner spikes
/// (−inhibition, one-tick feedback loop). Inputs: n pins; outputs: n pins.
struct WtaParams {
  int channels = 16;
  std::int16_t excite = 8;
  std::int16_t inhibit = -12;
  std::int32_t threshold = 24;
  std::int16_t leak = -1;  ///< Mild decay so stale evidence fades.
};
[[nodiscard]] Corelet make_wta(const WtaParams& p);

}  // namespace nsc::corelet
