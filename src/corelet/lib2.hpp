// Corelet library, part 2: signal-processing and logic building blocks
// (paper §IV-A: the corelet library covers "linear and non-linear signal and
// image processing; spatio-temporal filtering" — and the architecture is
// Turing-complete, which the spiking logic gates make concrete).
#pragma once

#include "src/corelet/corelet.hpp"

namespace nsc::corelet {

/// OR-pooling: `groups` outputs, each firing when ANY of its `pool` inputs
/// fires that tick (binary max-pool). groups*pool inputs, ≤256.
[[nodiscard]] Corelet make_max_pool(int groups, int pool);

/// Coincidence detection: one output per channel pair, firing only when both
/// the A and B input of that channel fire in the same tick.
/// Inputs: 2*channels pins (A0..An-1, B0..Bn-1); outputs: channels pins.
[[nodiscard]] Corelet make_coincidence(int channels);

/// Threshold ladder over a population: `n_inputs` axons feed `levels.size()`
/// neurons; neuron k fires persistently while the per-tick input spike count
/// exceeds levels[k] (leak −levels[k], threshold 2 — the NeoVision What
/// ladder as a reusable block).
[[nodiscard]] Corelet make_threshold_bank(int n_inputs, const std::vector<int>& levels);

/// First-order low-pass rate filter per channel: output rate tracks input
/// rate with time constant ≈ gain ticks (integrate `gain` per spike, decay 1
/// per tick, fire per `gain` accumulated).
[[nodiscard]] Corelet make_temporal_filter(int width, int gain);

/// Stochastic rate scaler: output rate ≈ input rate × num/256, using the
/// chip's probabilistic synapse mode (num in [1, 256]).
[[nodiscard]] Corelet make_rate_scaler(int width, int num);

/// Spiking logic gates (per tick, over rate-coded binary signals).
enum class GateKind { kOr, kAnd, kNot, kXor };

/// One gate: inputs A (and B for binary gates; NOT takes A plus a clock pin
/// that defines "when to evaluate"). Output pin 0 is the gate result.
/// XOR composes OR and AND internally through one-tick echo axons, so its
/// output lags the inputs by one tick.
[[nodiscard]] Corelet make_gate(GateKind kind);

}  // namespace nsc::corelet
