// Placement: mapping a corelet's logical cores onto physical cores of a chip
// (or chip array) and rewriting neuron targets from local indices to
// CoreIds. Two strategies are provided and ablated in the benches:
//   kLinear  — logical core i → CoreId i (simple, long average routes),
//   kBlock2D — logical cores fill a compact square block in snake order,
//              shortening average mesh routes for locally-connected corelets
//              (the clustered-topology assumption the kernel exploits).
#pragma once

#include <vector>

#include "src/core/input_schedule.hpp"
#include "src/core/network.hpp"
#include "src/corelet/corelet.hpp"

namespace nsc::corelet {

enum class PlaceStrategy { kLinear, kBlock2D };

/// A corelet deployed onto a network: the network plus the pin resolution
/// tables the encoders/decoders need.
struct PlacedCorelet {
  core::Network network;
  std::vector<core::CoreId> core_map;  ///< local core index → CoreId.
  std::vector<InputPin> inputs;        ///< copied pin tables (local indices).
  std::vector<OutputPin> outputs;

  /// Physical location of input pin `i`.
  [[nodiscard]] core::InputSpike input_at(int i, core::Tick t) const {
    const InputPin p = inputs[static_cast<std::size_t>(i)];
    return {t, core_map[static_cast<std::size_t>(p.core)], p.axon};
  }

  /// Physical (core, neuron) of output pin `i`.
  [[nodiscard]] std::pair<core::CoreId, std::uint16_t> output_at(int i) const {
    const OutputPin p = outputs[static_cast<std::size_t>(i)];
    return {core_map[static_cast<std::size_t>(p.core)], p.neuron};
  }

  /// Flat index of output pin `i` into a CountSink's counts() vector.
  [[nodiscard]] std::size_t output_flat_index(int i) const {
    const auto [c, n] = output_at(i);
    return static_cast<std::size_t>(c) * core::kCoreSize + n;
  }
};

/// Places `c` onto a fresh network with the given geometry. Throws
/// std::runtime_error if the corelet does not fit.
[[nodiscard]] PlacedCorelet place(const Corelet& c, const core::Geometry& geom,
                                  PlaceStrategy strategy = PlaceStrategy::kBlock2D,
                                  std::uint64_t seed = 1);

/// Smallest square-ish geometry (single chip) that fits `c`.
[[nodiscard]] core::Geometry fit_geometry(const Corelet& c);

}  // namespace nsc::corelet
