#include "src/corelet/lib2.hpp"

#include <stdexcept>

namespace nsc::corelet {

using core::kCoreSize;

Corelet make_max_pool(int groups, int pool) {
  if (groups < 1 || pool < 1 || groups * pool > kCoreSize || groups > kCoreSize) {
    throw std::out_of_range("max_pool shape");
  }
  Corelet c("max_pool");
  const int k = c.add_core();
  auto& cs = c.core(k);
  for (int g = 0; g < groups; ++g) {
    for (int p = 0; p < pool; ++p) {
      const int axon = g * pool + p;
      cs.crossbar.set(axon, g);
      c.add_input({k, static_cast<std::uint16_t>(axon)});
    }
    core::NeuronParams& n = cs.neuron[g];
    n.enabled = 1;
    n.weight[0] = 1;
    n.threshold = 1;
    n.reset_mode = core::ResetMode::kAbsolute;  // any input this tick -> fire
    c.add_output({k, static_cast<std::uint16_t>(g)});
  }
  return c;
}

Corelet make_coincidence(int channels) {
  if (channels < 1 || 2 * channels > kCoreSize) throw std::out_of_range("coincidence channels");
  Corelet c("coincidence");
  const int k = c.add_core();
  auto& cs = c.core(k);
  for (int i = 0; i < channels; ++i) {
    cs.crossbar.set(i, i);             // A_i
    cs.crossbar.set(channels + i, i);  // B_i
    core::NeuronParams& n = cs.neuron[i];
    n.enabled = 1;
    // Leak applies before the threshold check (kernel phase order), so a
    // same-tick pair must clear θ *after* the −1 decay: 2·2 − 1 ≥ 3, while
    // a lone spike leaves 1 and a stale+fresh pair reaches only 2.
    n.weight[0] = 2;
    n.threshold = 3;
    n.leak = -1;
    n.neg_threshold = 0;
    n.negative_mode = core::NegativeMode::kSaturate;
    n.reset_mode = core::ResetMode::kAbsolute;
    c.add_output({k, static_cast<std::uint16_t>(i)});
  }
  for (int i = 0; i < channels; ++i) c.add_input({k, static_cast<std::uint16_t>(i)});
  for (int i = 0; i < channels; ++i) {
    c.add_input({k, static_cast<std::uint16_t>(channels + i)});
  }
  return c;
}

Corelet make_threshold_bank(int n_inputs, const std::vector<int>& levels) {
  if (n_inputs < 1 || n_inputs > kCoreSize || levels.empty() ||
      static_cast<int>(levels.size()) > kCoreSize) {
    throw std::out_of_range("threshold_bank shape");
  }
  Corelet c("threshold_bank");
  const int k = c.add_core();
  auto& cs = c.core(k);
  for (int i = 0; i < n_inputs; ++i) c.add_input({k, static_cast<std::uint16_t>(i)});
  for (std::size_t l = 0; l < levels.size(); ++l) {
    if (levels[l] < 1 || levels[l] > 255) throw std::out_of_range("threshold_bank level");
    for (int i = 0; i < n_inputs; ++i) cs.crossbar.set(i, static_cast<int>(l));
    core::NeuronParams& n = cs.neuron[l];
    n.enabled = 1;
    n.weight[0] = 1;
    n.leak = static_cast<std::int16_t>(-levels[l]);
    n.threshold = 2;
    n.neg_threshold = 0;
    n.negative_mode = core::NegativeMode::kSaturate;
    n.reset_mode = core::ResetMode::kLinear;
    c.add_output({k, static_cast<std::uint16_t>(l)});
  }
  return c;
}

Corelet make_temporal_filter(int width, int gain) {
  if (width < 1 || width > kCoreSize || gain < 1 || gain > 255) {
    throw std::out_of_range("temporal_filter shape");
  }
  Corelet c("temporal_filter");
  const int k = c.add_core();
  auto& cs = c.core(k);
  for (int i = 0; i < width; ++i) {
    cs.crossbar.set(i, i);
    core::NeuronParams& n = cs.neuron[i];
    n.enabled = 1;
    n.weight[0] = static_cast<std::int16_t>(gain);
    n.leak = -1;
    n.threshold = static_cast<std::int32_t>(gain);
    n.neg_threshold = 0;
    n.negative_mode = core::NegativeMode::kSaturate;
    n.reset_mode = core::ResetMode::kLinear;
    c.add_input({k, static_cast<std::uint16_t>(i)});
    c.add_output({k, static_cast<std::uint16_t>(i)});
  }
  return c;
}

Corelet make_rate_scaler(int width, int num) {
  if (width < 1 || width > kCoreSize || num < 1 || num > 256) {
    throw std::out_of_range("rate_scaler shape");
  }
  Corelet c("rate_scaler");
  const int k = c.add_core();
  auto& cs = c.core(k);
  for (int i = 0; i < width; ++i) {
    cs.crossbar.set(i, i);
    core::NeuronParams& n = cs.neuron[i];
    n.enabled = 1;
    // Probabilistic integration: weight `num` in stochastic mode applies +1
    // with probability num/256 per input spike (paper §III-A).
    n.weight[0] = static_cast<std::int16_t>(num == 256 ? 255 : num);
    n.stochastic_weight = num == 256 ? 0 : 1;  // 256/256 = deterministic
    n.threshold = 1;
    n.reset_mode = core::ResetMode::kAbsolute;
    c.add_input({k, static_cast<std::uint16_t>(i)});
    c.add_output({k, static_cast<std::uint16_t>(i)});
  }
  return c;
}

Corelet make_gate(GateKind kind) {
  Corelet c("gate");
  const int k = c.add_core();
  auto& cs = c.core(k);
  // Axons: 0 = A, 1 = B (or clock for NOT), 2..3 = internal echoes (XOR).
  switch (kind) {
    case GateKind::kOr: {
      cs.crossbar.set(0, 0);
      cs.crossbar.set(1, 0);
      core::NeuronParams& n = cs.neuron[0];
      n.enabled = 1;
      n.weight[0] = 1;
      n.threshold = 1;
      n.reset_mode = core::ResetMode::kAbsolute;
      break;
    }
    case GateKind::kAnd: {
      cs.crossbar.set(0, 0);
      cs.crossbar.set(1, 0);
      core::NeuronParams& n = cs.neuron[0];
      n.enabled = 1;
      // See make_coincidence: θ clears only when both inputs land in the
      // same tick, net of the −1 decay that runs before thresholding.
      n.weight[0] = 2;
      n.threshold = 3;
      n.leak = -1;
      n.neg_threshold = 0;
      n.negative_mode = core::NegativeMode::kSaturate;
      n.reset_mode = core::ResetMode::kAbsolute;
      break;
    }
    case GateKind::kNot: {
      // Fires on clock ticks when A is silent: clock +1, A −2, θ = 1.
      cs.axon_type[0] = 1;  // A on the inhibitory type
      cs.crossbar.set(0, 0);
      cs.crossbar.set(1, 0);
      core::NeuronParams& n = cs.neuron[0];
      n.enabled = 1;
      n.weight[0] = 1;   // clock (axon 1, type 0)
      n.weight[1] = -2;  // A (axon 0, type 1)
      n.threshold = 1;
      n.neg_threshold = 0;
      n.negative_mode = core::NegativeMode::kSaturate;
      n.reset_mode = core::ResetMode::kAbsolute;
      break;
    }
    case GateKind::kXor: {
      // Layer 1: OR (neuron 1) and AND (neuron 2) echo into axons 2 and 3;
      // layer 2: XOR = OR − 2·AND one tick later (neuron 0).
      cs.axon_type[3] = 1;
      for (int a : {0, 1}) {
        cs.crossbar.set(a, 1);
        cs.crossbar.set(a, 2);
      }
      core::NeuronParams& orn = cs.neuron[1];
      orn.enabled = 1;
      orn.weight[0] = 1;
      orn.threshold = 1;
      orn.reset_mode = core::ResetMode::kAbsolute;
      core::NeuronParams& andn = cs.neuron[2];
      andn = orn;
      andn.weight[0] = 2;
      andn.threshold = 3;
      andn.leak = -1;
      andn.neg_threshold = 0;
      andn.negative_mode = core::NegativeMode::kSaturate;
      c.connect({k, 1}, {k, 2}, 1);
      c.connect({k, 2}, {k, 3}, 1);
      cs.crossbar.set(2, 0);
      cs.crossbar.set(3, 0);
      core::NeuronParams& x = cs.neuron[0];
      x.enabled = 1;
      x.weight[0] = 2;   // OR echo (clears θ net of the decay)
      x.weight[1] = -4;  // AND echo veto
      x.threshold = 1;
      x.leak = -1;
      x.neg_threshold = 0;
      x.negative_mode = core::NegativeMode::kSaturate;
      x.reset_mode = core::ResetMode::kAbsolute;
      break;
    }
  }
  c.add_input({k, 0});
  c.add_input({k, 1});
  c.add_output({k, 0});
  return c;
}

}  // namespace nsc::corelet
