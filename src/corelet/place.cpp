#include "src/corelet/place.hpp"

#include <cmath>
#include <stdexcept>

namespace nsc::corelet {

core::Geometry fit_geometry(const Corelet& c) {
  const int n = std::max(1, c.core_count());
  int side = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
  // Chips are square in this reproduction's scaled geometries; round up so
  // side*side >= n.
  return core::Geometry{1, 1, side, side};
}

PlacedCorelet place(const Corelet& c, const core::Geometry& geom, PlaceStrategy strategy,
                    std::uint64_t seed) {
  const int n = c.core_count();
  if (n > geom.total_cores()) {
    throw std::runtime_error("place: corelet has " + std::to_string(n) +
                             " cores but geometry holds only " +
                             std::to_string(geom.total_cores()));
  }

  PlacedCorelet out;
  out.network = core::Network(geom, seed);
  out.core_map.resize(static_cast<std::size_t>(n));

  if (strategy == PlaceStrategy::kLinear) {
    for (int i = 0; i < n; ++i) {
      out.core_map[static_cast<std::size_t>(i)] = static_cast<core::CoreId>(i);
    }
  } else {
    // Snake order over a w×h block: consecutive logical cores stay mesh
    // neighbors, which keeps pipeline-style corelets' routes short.
    const int w = geom.chips_x * geom.cores_x;
    int placed = 0;
    for (int y = 0; placed < n; ++y) {
      for (int k = 0; k < w && placed < n; ++k) {
        const int x = (y % 2 == 0) ? k : w - 1 - k;
        out.core_map[static_cast<std::size_t>(placed++)] =
            geom.core_at_global(x, y);
      }
    }
  }

  for (int i = 0; i < n; ++i) {
    core::CoreSpec spec = c.core(i);
    for (auto& p : spec.neuron) {
      if (p.target.valid()) {
        p.target.core = out.core_map[static_cast<std::size_t>(p.target.core)];
      }
    }
    out.network.core(out.core_map[static_cast<std::size_t>(i)]) = std::move(spec);
  }

  out.inputs.reserve(static_cast<std::size_t>(c.input_count()));
  for (int i = 0; i < c.input_count(); ++i) out.inputs.push_back(c.input(i));
  out.outputs.reserve(static_cast<std::size_t>(c.output_count()));
  for (int i = 0; i < c.output_count(); ++i) out.outputs.push_back(c.output(i));
  return out;
}

}  // namespace nsc::corelet
