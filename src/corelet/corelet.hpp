// Corelet layer: compositional network construction (paper §IV-A).
//
// A corelet encapsulates a network of neurosynaptic cores behind named input
// pins (axons that receive external spikes) and output pins (neurons whose
// spikes leave the corelet). Corelets compose hierarchically: a parent
// absorbs children, wires child outputs to child inputs, and re-exports the
// pins that remain external — the "object-oriented, compositional" model of
// the Corelet Programming Environment, reduced to its structural essence.
//
// While under construction, neuron targets refer to *local* core indices;
// placement (place.hpp) assigns physical CoreIds and rewrites the targets,
// so one corelet can be deployed at any position of any chip array.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/network.hpp"

namespace nsc::corelet {

/// An axon of a logical core: where spikes enter.
struct InputPin {
  int core = 0;
  std::uint16_t axon = 0;
};

/// A neuron of a logical core: where spikes exit.
struct OutputPin {
  int core = 0;
  std::uint16_t neuron = 0;
};

class Corelet {
 public:
  explicit Corelet(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] int core_count() const noexcept { return static_cast<int>(cores_.size()); }

  /// Adds a fresh logical core (all neurons disabled) and returns its index.
  int add_core();

  [[nodiscard]] core::CoreSpec& core(int i) { return cores_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const core::CoreSpec& core(int i) const {
    return cores_[static_cast<std::size_t>(i)];
  }

  /// Routes `src`'s spikes to `dst` (both local), with the given axonal
  /// delay. A neuron has exactly one target; re-connecting overwrites it.
  void connect(OutputPin src, InputPin dst, int delay = core::kMinDelay);

  // ---- Pin namespace ------------------------------------------------------
  int add_input(InputPin pin);
  int add_output(OutputPin pin);
  [[nodiscard]] int input_count() const noexcept { return static_cast<int>(inputs_.size()); }
  [[nodiscard]] int output_count() const noexcept { return static_cast<int>(outputs_.size()); }
  [[nodiscard]] InputPin input(int i) const { return inputs_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] OutputPin output(int i) const { return outputs_[static_cast<std::size_t>(i)]; }

  // ---- Composition --------------------------------------------------------

  /// Absorbs `child`'s cores (after this call the child must not be reused);
  /// returns the core-index offset of the child's first core. The child's
  /// internal connections are rebased automatically; its pins are NOT
  /// auto-exported — use offset_pin / wire helpers below.
  int absorb(Corelet child);

  /// Rebases a child pin into this corelet's index space.
  [[nodiscard]] static InputPin offset_pin(InputPin p, int core_offset) {
    return {p.core + core_offset, p.axon};
  }
  [[nodiscard]] static OutputPin offset_pin(OutputPin p, int core_offset) {
    return {p.core + core_offset, p.neuron};
  }

  /// Total enabled neurons across all cores (reported per app, paper §IV-B).
  [[nodiscard]] std::uint64_t enabled_neurons() const;

 private:
  std::string name_;
  std::vector<core::CoreSpec> cores_;

  friend struct PlacedCorelet;
  friend class Placer;
  [[nodiscard]] const std::vector<core::CoreSpec>& cores() const noexcept { return cores_; }

  std::vector<InputPin> inputs_;
  std::vector<OutputPin> outputs_;
};

}  // namespace nsc::corelet
