#include "src/core/network_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "src/core/snapshot.hpp"

namespace nsc::core {
namespace {

constexpr std::uint32_t kMagic = 0x4E53434Eu;  // "NSCN"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
void read_pod(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("network file truncated");
}

void write_neuron(std::ostream& os, const NeuronParams& p) {
  for (int g = 0; g < kAxonTypes; ++g) write_pod(os, p.weight[g]);
  write_pod(os, p.leak);
  write_pod(os, p.threshold);
  write_pod(os, p.neg_threshold);
  write_pod(os, p.reset_v);
  write_pod(os, p.init_v);
  write_pod(os, p.threshold_mask);
  write_pod(os, p.stochastic_weight);
  write_pod(os, p.stochastic_leak);
  write_pod(os, p.leak_reversal);
  write_pod(os, static_cast<std::uint8_t>(p.reset_mode));
  write_pod(os, static_cast<std::uint8_t>(p.negative_mode));
  write_pod(os, p.target.core);
  write_pod(os, p.target.axon);
  write_pod(os, p.target.delay);
  write_pod(os, p.enabled);
}

void read_neuron(std::istream& is, NeuronParams& p) {
  for (int g = 0; g < kAxonTypes; ++g) read_pod(is, p.weight[g]);
  read_pod(is, p.leak);
  read_pod(is, p.threshold);
  read_pod(is, p.neg_threshold);
  read_pod(is, p.reset_v);
  read_pod(is, p.init_v);
  read_pod(is, p.threshold_mask);
  read_pod(is, p.stochastic_weight);
  read_pod(is, p.stochastic_leak);
  read_pod(is, p.leak_reversal);
  std::uint8_t rm = 0, nm = 0;
  read_pod(is, rm);
  read_pod(is, nm);
  p.reset_mode = static_cast<ResetMode>(rm);
  p.negative_mode = static_cast<NegativeMode>(nm);
  read_pod(is, p.target.core);
  read_pod(is, p.target.axon);
  read_pod(is, p.target.delay);
  read_pod(is, p.enabled);
}

void write_core(std::ostream& os, const CoreSpec& c) {
  write_pod(os, c.disabled);
  for (int i = 0; i < kCoreSize; ++i) {
    for (int w = 0; w < util::BitRow256::kWords; ++w) write_pod(os, c.crossbar.row(i).word(w));
  }
  os.write(reinterpret_cast<const char*>(c.axon_type.data()),
           static_cast<std::streamsize>(c.axon_type.size()));
  for (int j = 0; j < kCoreSize; ++j) write_neuron(os, c.neuron[j]);
}

/// Serialized size of one core, measured once (the format is fixed-width).
std::uint64_t serialized_core_bytes() {
  static const std::uint64_t n = [] {
    std::ostringstream ss;
    write_core(ss, CoreSpec{});
    return static_cast<std::uint64_t>(ss.tellp());
  }();
  return n;
}

}  // namespace

void save_network(const Network& net, std::ostream& os) {
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod(os, net.geom.chips_x);
  write_pod(os, net.geom.chips_y);
  write_pod(os, net.geom.cores_x);
  write_pod(os, net.geom.cores_y);
  write_pod(os, net.seed);
  for (const CoreSpec& c : net.cores) write_core(os, c);
  if (!os) throw std::runtime_error("network write failed");
}

void save_network(const Network& net, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  save_network(net, f);
}

Network load_network(std::istream& is) {
  std::uint32_t magic = 0, version = 0;
  read_pod(is, magic);
  read_pod(is, version);
  if (magic != kMagic) throw std::runtime_error("not a neurosyn network file");
  if (version != kVersion) throw std::runtime_error("unsupported network file version");
  Geometry g;
  read_pod(is, g.chips_x);
  read_pod(is, g.chips_y);
  read_pod(is, g.cores_x);
  read_pod(is, g.cores_y);
  if (g.chips_x <= 0 || g.chips_y <= 0 || g.cores_x <= 0 || g.cores_y <= 0 ||
      g.total_cores() > (1 << 24)) {
    throw std::runtime_error("implausible geometry in network file");
  }
  std::uint64_t seed = 0;
  read_pod(is, seed);
  // Hostile-file guard: a forged header could claim millions of cores and
  // make us allocate gigabytes before the first truncated read. Check the
  // bytes actually present against what the geometry demands first.
  const std::uint64_t need =
      static_cast<std::uint64_t>(g.total_cores()) * serialized_core_bytes();
  if (stream_remaining(is) < need) {
    throw std::runtime_error("network file truncated (header claims more cores than present)");
  }
  Network net(g, seed);
  for (CoreSpec& c : net.cores) {
    read_pod(is, c.disabled);
    for (int i = 0; i < kCoreSize; ++i) {
      for (int w = 0; w < util::BitRow256::kWords; ++w) {
        std::uint64_t word = 0;
        read_pod(is, word);
        c.crossbar.row(i).set_word(w, word);
      }
    }
    is.read(reinterpret_cast<char*>(c.axon_type.data()),
            static_cast<std::streamsize>(c.axon_type.size()));
    if (!is) throw std::runtime_error("network file truncated");
    for (int j = 0; j < kCoreSize; ++j) read_neuron(is, c.neuron[j]);
  }
  return net;
}

Network load_network(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path);
  return load_network(f);
}

}  // namespace nsc::core
