// Address-event representation (AER) files: the interchange format of the
// neuromorphic world (the physical boards stream spikes as address events
// over the merge/split ports; datasets and recorded outputs are shipped as
// event files). Binary format: magic + version + count, then packed
// (tick i64, core u32, address u16) records — used both for input schedules
// (address = axon) and recorded spikes (address = neuron).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/core/input_schedule.hpp"
#include "src/core/types.hpp"

namespace nsc::core {

/// Writes input events (address = target axon).
void save_aer(const InputSchedule& events, std::ostream& os);
void save_aer(const InputSchedule& events, const std::string& path);

/// Writes recorded spikes (address = source neuron).
void save_aer(const std::vector<Spike>& spikes, std::ostream& os);
void save_aer(const std::vector<Spike>& spikes, const std::string& path);

/// Reads an AER file as an input schedule (finalized).
[[nodiscard]] InputSchedule load_aer_inputs(std::istream& is);
[[nodiscard]] InputSchedule load_aer_inputs(const std::string& path);

/// Reads an AER file as a spike record.
[[nodiscard]] std::vector<Spike> load_aer_spikes(std::istream& is);
[[nodiscard]] std::vector<Spike> load_aer_spikes(const std::string& path);

}  // namespace nsc::core
