// External input spikes, pre-sorted by tick for O(1) per-tick lookup.
//
// On the physical system, off-chip spikes arrive through the chip's merge
// ports (driven by the Zynq "thalamus" FPGA, paper §VII-A); here the encoder
// corelets of the vision substrate produce an InputSchedule per video clip.
#pragma once

#include <span>
#include <vector>

#include "src/core/types.hpp"

namespace nsc::core {

class InputSchedule {
 public:
  void add(Tick tick, CoreId core, std::uint16_t axon) { events_.push_back({tick, core, axon}); }
  void add(const InputSpike& s) { events_.push_back(s); }

  /// Sorts events and builds the per-tick index. Must be called after the
  /// last add() and before the first at(). Idempotent.
  void finalize();

  /// All events scheduled for `tick` (finalize() required first).
  [[nodiscard]] std::span<const InputSpike> at(Tick tick) const;

  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] Tick last_tick() const noexcept;

  /// All events (sorted and deduplicated once finalized). Used by the AER
  /// serializer.
  [[nodiscard]] std::span<const InputSpike> events() const noexcept { return events_; }

  void clear() {
    events_.clear();
    offsets_.clear();
    finalized_ = false;
  }

 private:
  std::vector<InputSpike> events_;
  std::vector<std::size_t> offsets_;  ///< offsets_[t] .. offsets_[t+1] span tick t.
  bool finalized_ = false;
};

}  // namespace nsc::core
