#include "src/core/network.hpp"

#include <stdexcept>

namespace nsc::core {

void Simulator::save_checkpoint(std::ostream&) const {
  throw std::runtime_error("this backend does not support checkpointing");
}

void Simulator::load_checkpoint(std::istream&) {
  throw std::runtime_error("this backend does not support checkpointing");
}

bool Simulator::fail_core(CoreId) { return false; }

bool Simulator::fail_link(int, int) { return false; }

bool Simulator::fail_rank(int, bool) { return false; }

double CoreSpec::mean_row_synapses() const {
  int rows_used = 0;
  int syn = 0;
  for (int i = 0; i < kCoreSize; ++i) {
    const int c = crossbar.row_count(i);
    if (c > 0) {
      ++rows_used;
      syn += c;
    }
  }
  return rows_used ? static_cast<double>(syn) / rows_used : 0.0;
}

std::uint64_t Network::total_synapses() const {
  std::uint64_t n = 0;
  for (const auto& c : cores) n += static_cast<std::uint64_t>(c.crossbar.count());
  return n;
}

std::uint64_t Network::enabled_neurons() const {
  std::uint64_t n = 0;
  for (const auto& c : cores) {
    for (const auto& p : c.neuron) n += p.enabled ? 1 : 0;
  }
  return n;
}

int Network::used_cores() const {
  int n = 0;
  for (const auto& c : cores) {
    if (c.disabled) continue;
    bool used = c.crossbar.count() > 0;
    if (!used) {
      for (const auto& p : c.neuron) {
        if (p.enabled) {
          used = true;
          break;
        }
      }
    }
    n += used ? 1 : 0;
  }
  return n;
}

}  // namespace nsc::core
