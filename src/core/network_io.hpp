// Binary model files: save/load a Network so trained models can move between
// tools, mirroring the paper's deploy-unchanged workflow (Compass-trained
// models run on TrueNorth without modification).
#pragma once

#include <iosfwd>
#include <string>

#include "src/core/network.hpp"

namespace nsc::core {

/// Serializes `net` (magic + version header, geometry, seed, dense cores).
void save_network(const Network& net, std::ostream& os);
void save_network(const Network& net, const std::string& path);

/// Deserializes a network; throws std::runtime_error on format errors.
[[nodiscard]] Network load_network(std::istream& is);
[[nodiscard]] Network load_network(const std::string& path);

}  // namespace nsc::core
