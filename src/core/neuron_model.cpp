#include "src/core/neuron_model.hpp"

namespace nsc::core {

bool leak_threshold_update(std::int32_t& v, const NeuronParams& p, const util::CounterPrng& prng,
                           std::uint32_t core, std::uint32_t neuron, Tick tick) noexcept {
  v = clamp_potential(static_cast<std::int64_t>(v) + leak_delta(p, prng, core, neuron, tick, v));
  return threshold_fire_reset(v, p, prng, core, neuron, tick);
}

}  // namespace nsc::core
