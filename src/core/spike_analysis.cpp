#include "src/core/spike_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace nsc::core {

std::vector<std::uint32_t> population_trace(const std::vector<Spike>& spikes, Tick t0,
                                            Tick ticks) {
  std::vector<std::uint32_t> trace(static_cast<std::size_t>(std::max<Tick>(ticks, 0)), 0);
  for (const Spike& s : spikes) {
    if (s.tick < t0 || s.tick >= t0 + ticks) continue;
    ++trace[static_cast<std::size_t>(s.tick - t0)];
  }
  return trace;
}

std::vector<std::uint32_t> per_neuron_counts(const std::vector<Spike>& spikes,
                                             std::uint64_t neurons) {
  std::vector<std::uint32_t> counts(static_cast<std::size_t>(neurons), 0);
  for (const Spike& s : spikes) {
    const std::uint64_t idx = static_cast<std::uint64_t>(s.core) * kCoreSize + s.neuron;
    if (idx < neurons) ++counts[static_cast<std::size_t>(idx)];
  }
  return counts;
}

SpikeTrainStats analyze_spikes(const std::vector<Spike>& spikes, std::uint64_t neurons, Tick t0,
                               Tick ticks) {
  SpikeTrainStats out;
  if (neurons == 0 || ticks <= 0) return out;

  // Per-neuron last-spike times for ISI accumulation.
  std::map<std::uint64_t, Tick> last;
  double isi_sum = 0.0, isi_sq = 0.0;
  std::uint64_t isi_n = 0;
  std::vector<std::uint32_t> trace(static_cast<std::size_t>(ticks), 0);
  std::map<std::uint64_t, std::uint32_t> per_neuron;

  for (const Spike& s : spikes) {
    if (s.tick < t0 || s.tick >= t0 + ticks) continue;
    ++out.spikes;
    ++trace[static_cast<std::size_t>(s.tick - t0)];
    const std::uint64_t id = static_cast<std::uint64_t>(s.core) * kCoreSize + s.neuron;
    ++per_neuron[id];
    const auto it = last.find(id);
    if (it != last.end()) {
      const double isi = static_cast<double>(s.tick - it->second);
      isi_sum += isi;
      isi_sq += isi * isi;
      ++isi_n;
      it->second = s.tick;
    } else {
      last.emplace(id, s.tick);
    }
  }

  out.mean_rate_hz = 1000.0 * static_cast<double>(out.spikes) /
                     (static_cast<double>(ticks) * static_cast<double>(neurons));
  out.active_fraction = static_cast<double>(per_neuron.size()) / static_cast<double>(neurons);
  if (isi_n > 0) {
    out.isi_mean = isi_sum / static_cast<double>(isi_n);
    const double var = isi_sq / static_cast<double>(isi_n) - out.isi_mean * out.isi_mean;
    out.isi_cv = out.isi_mean > 0.0 ? std::sqrt(std::max(0.0, var)) / out.isi_mean : 0.0;
  }
  double mean = 0.0;
  for (std::uint32_t c : trace) {
    mean += c;
    out.peak_tick_count = std::max(out.peak_tick_count, c);
  }
  mean /= static_cast<double>(ticks);
  double var = 0.0;
  for (std::uint32_t c : trace) var += (c - mean) * (c - mean);
  var /= static_cast<double>(ticks);
  out.synchrony = mean > 0.0 ? var / mean : 0.0;
  return out;
}

}  // namespace nsc::core
