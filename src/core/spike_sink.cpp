#include "src/core/spike_sink.hpp"

#include <algorithm>

namespace nsc::core {

std::int64_t first_mismatch(const std::vector<Spike>& a, const std::vector<Spike>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return static_cast<std::int64_t>(i);
  }
  if (a.size() != b.size()) return static_cast<std::int64_t>(n);
  return -1;
}

}  // namespace nsc::core
