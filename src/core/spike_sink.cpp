#include "src/core/spike_sink.hpp"

#include <algorithm>

namespace nsc::core {

std::uint64_t trace_hash(const std::vector<Spike>& spikes) {
  TraceHashSink sink;
  for (const Spike& s : spikes) sink.on_spike(s.tick, s.core, s.neuron);
  return sink.hash();
}

std::int64_t first_mismatch(const std::vector<Spike>& a, const std::vector<Spike>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return static_cast<std::int64_t>(i);
  }
  if (a.size() != b.size()) return static_cast<std::int64_t>(n);
  return -1;
}

}  // namespace nsc::core
