// Crossbar is header-only; this TU anchors the library target.
#include "src/core/crossbar.hpp"
