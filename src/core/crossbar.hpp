// The 256×256 binary synaptic crossbar of one neurosynaptic core.
//
// Rows are axons, columns are neurons (paper Fig. 3(a)). The crossbar is the
// data structure that lets one spike event fan out to up to 256 synapses
// locally, cutting network traffic by a factor of S/N ≈ 256 versus
// per-synapse addressing (paper §III-A).
#pragma once

#include <array>
#include <cstdint>

#include "src/core/types.hpp"
#include "src/util/bitrow.hpp"

namespace nsc::core {

class Crossbar {
 public:
  /// Sets/clears the synapse from axon `i` to neuron `j`.
  void set(int i, int j, bool on = true) {
    if (on) {
      rows_[static_cast<std::size_t>(i)].set(j);
    } else {
      rows_[static_cast<std::size_t>(i)].clear(j);
    }
  }

  [[nodiscard]] bool test(int i, int j) const { return rows_[static_cast<std::size_t>(i)].test(j); }

  /// All synapses of axon `i` as a bit row (event-driven fan-out unit).
  [[nodiscard]] const util::BitRow256& row(int i) const {
    return rows_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] util::BitRow256& row(int i) { return rows_[static_cast<std::size_t>(i)]; }

  /// Number of active synapses on axon `i` (its fan-out).
  [[nodiscard]] int row_count(int i) const { return rows_[static_cast<std::size_t>(i)].count(); }

  /// Total active synapses in the core.
  [[nodiscard]] int count() const {
    int n = 0;
    for (const auto& r : rows_) n += r.count();
    return n;
  }

  /// In-degree of neuron `j` (column population count).
  [[nodiscard]] int column_count(int j) const {
    int n = 0;
    for (const auto& r : rows_) n += r.test(j) ? 1 : 0;
    return n;
  }

  void clear() {
    for (auto& r : rows_) r.reset();
  }

  friend bool operator==(const Crossbar&, const Crossbar&) = default;

 private:
  std::array<util::BitRow256, kCoreSize> rows_{};
};

}  // namespace nsc::core
