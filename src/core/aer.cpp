#include "src/core/aer.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace nsc::core {
namespace {

constexpr std::uint32_t kMagic = 0x4E414552u;  // "NAER"
constexpr std::uint32_t kVersion = 1;

struct Record {
  std::int64_t tick;
  std::uint32_t core;
  std::uint16_t address;
};

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
void read_pod(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("AER file truncated");
}

void write_header(std::ostream& os, std::uint64_t count) {
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod(os, count);
}

std::uint64_t read_header(std::istream& is) {
  std::uint32_t magic = 0, version = 0;
  std::uint64_t count = 0;
  read_pod(is, magic);
  read_pod(is, version);
  read_pod(is, count);
  if (magic != kMagic) throw std::runtime_error("not an AER file");
  if (version != kVersion) throw std::runtime_error("unsupported AER version");
  return count;
}

void write_record(std::ostream& os, const Record& r) {
  write_pod(os, r.tick);
  write_pod(os, r.core);
  write_pod(os, r.address);
}

Record read_record(std::istream& is) {
  Record r{};
  read_pod(is, r.tick);
  read_pod(is, r.core);
  read_pod(is, r.address);
  return r;
}

}  // namespace

void save_aer(const InputSchedule& events, std::ostream& os) {
  write_header(os, events.size());
  for (const InputSpike& s : events.events()) {
    write_record(os, {s.tick, s.core, s.axon});
  }
  if (!os) throw std::runtime_error("AER write failed");
}

void save_aer(const InputSchedule& events, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  save_aer(events, f);
}

void save_aer(const std::vector<Spike>& spikes, std::ostream& os) {
  write_header(os, spikes.size());
  for (const Spike& s : spikes) {
    write_record(os, {s.tick, s.core, s.neuron});
  }
  if (!os) throw std::runtime_error("AER write failed");
}

void save_aer(const std::vector<Spike>& spikes, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  save_aer(spikes, f);
}

InputSchedule load_aer_inputs(std::istream& is) {
  const std::uint64_t n = read_header(is);
  InputSchedule in;
  for (std::uint64_t i = 0; i < n; ++i) {
    const Record r = read_record(is);
    in.add(r.tick, r.core, r.address);
  }
  in.finalize();
  return in;
}

InputSchedule load_aer_inputs(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path);
  return load_aer_inputs(f);
}

std::vector<Spike> load_aer_spikes(std::istream& is) {
  const std::uint64_t n = read_header(is);
  std::vector<Spike> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const Record r = read_record(is);
    out.push_back({r.tick, r.core, r.address});
  }
  return out;
}

std::vector<Spike> load_aer_spikes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path);
  return load_aer_spikes(f);
}

}  // namespace nsc::core
