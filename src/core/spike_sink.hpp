// Concrete SpikeSink implementations shared by tests, benches and apps.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/network.hpp"
#include "src/core/types.hpp"

namespace nsc::core {

/// Discards spikes (characterization runs that only need counters).
class NullSink final : public SpikeSink {
 public:
  void on_spike(Tick, CoreId, std::uint16_t) override {}
};

/// Records every spike; the equivalence tests compare two VectorSinks.
class VectorSink final : public SpikeSink {
 public:
  void on_spike(Tick tick, CoreId core, std::uint16_t neuron) override {
    spikes_.push_back({tick, core, neuron});
  }

  void on_spike_batch(const Spike* spikes, std::size_t n) override {
    spikes_.insert(spikes_.end(), spikes, spikes + n);
  }

  [[nodiscard]] const std::vector<Spike>& spikes() const noexcept { return spikes_; }
  void clear() { spikes_.clear(); }

 private:
  std::vector<Spike> spikes_;
};

/// Counts spikes per (core, neuron) — the decoder substrate for rate-coded
/// application outputs.
class CountSink final : public SpikeSink {
 public:
  explicit CountSink(std::uint64_t total_neurons)
      : counts_(static_cast<std::size_t>(total_neurons), 0) {}

  void on_spike(Tick, CoreId core, std::uint16_t neuron) override {
    ++counts_[static_cast<std::size_t>(core) * kCoreSize + neuron];
  }

  [[nodiscard]] std::uint32_t count(CoreId core, std::uint16_t neuron) const {
    return counts_[static_cast<std::size_t>(core) * kCoreSize + neuron];
  }

  void clear() { counts_.assign(counts_.size(), 0); }

  [[nodiscard]] const std::vector<std::uint32_t>& counts() const noexcept { return counts_; }

 private:
  std::vector<std::uint32_t> counts_;
};

/// Streams spikes into per-tick windows; used by frame-based decoders that
/// need counts per video frame rather than per whole run.
class WindowedCountSink final : public SpikeSink {
 public:
  WindowedCountSink(std::uint64_t total_neurons, Tick window)
      : window_(window), counts_(static_cast<std::size_t>(total_neurons), 0) {}

  void on_spike(Tick, CoreId core, std::uint16_t neuron) override {
    ++counts_[static_cast<std::size_t>(core) * kCoreSize + neuron];
  }

  void on_tick_end(Tick tick) override {
    if ((tick + 1) % window_ == 0) {
      windows_.push_back(counts_);
      counts_.assign(counts_.size(), 0);
    }
  }

  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>& windows() const noexcept {
    return windows_;
  }

 private:
  Tick window_;
  std::vector<std::uint32_t> counts_;
  std::vector<std::vector<std::uint32_t>> windows_;
};

/// Fans one spike stream out to several sinks.
class TeeSink final : public SpikeSink {
 public:
  explicit TeeSink(std::vector<SpikeSink*> sinks) : sinks_(std::move(sinks)) {}

  void on_spike(Tick tick, CoreId core, std::uint16_t neuron) override {
    for (auto* s : sinks_) s->on_spike(tick, core, neuron);
  }
  void on_tick_end(Tick tick) override {
    for (auto* s : sinks_) s->on_tick_end(tick);
  }

 private:
  std::vector<SpikeSink*> sinks_;
};

/// Streaming FNV-1a 64 digest of the canonical spike stream: each spike
/// feeds its (tick, core, neuron) as 8+4+2 little-endian bytes, in emission
/// order. Because every simulator emits spikes in canonical per-tick
/// (core, neuron) order, equal hashes mean spike-for-spike identical runs —
/// the golden-trace fixtures under tests/data/ pin this digest so any
/// behavioral drift in the kernel fails ctest (docs/PERFORMANCE.md).
class TraceHashSink final : public SpikeSink {
 public:
  static constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
  static constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

  void on_spike(Tick tick, CoreId core, std::uint16_t neuron) override {
    mix(static_cast<std::uint64_t>(tick), 8);
    mix(static_cast<std::uint32_t>(core), 4);
    mix(neuron, 2);
    ++count_;
  }

  [[nodiscard]] std::uint64_t hash() const noexcept { return h_; }
  [[nodiscard]] std::uint64_t spike_count() const noexcept { return count_; }

 private:
  void mix(std::uint64_t x, int nbytes) noexcept {
    for (int b = 0; b < nbytes; ++b) {
      h_ = (h_ ^ ((x >> (8 * b)) & 0xFFU)) * kFnvPrime;
    }
  }

  std::uint64_t h_ = kFnvOffset;
  std::uint64_t count_ = 0;
};

/// The same digest over an already-recorded stream.
[[nodiscard]] std::uint64_t trace_hash(const std::vector<Spike>& spikes);

/// Compares two recorded spike streams; returns the index of the first
/// mismatch or -1 when identical. Used by the 1:1 regression harness.
[[nodiscard]] std::int64_t first_mismatch(const std::vector<Spike>& a, const std::vector<Spike>& b);

}  // namespace nsc::core
