#include "src/core/input_schedule.hpp"

#include <algorithm>
#include <cassert>

namespace nsc::core {

void InputSchedule::finalize() {
  if (finalized_) return;
  std::sort(events_.begin(), events_.end());
  events_.erase(std::unique(events_.begin(), events_.end()), events_.end());
  const Tick last = events_.empty() ? -1 : events_.back().tick;
  assert(events_.empty() || events_.front().tick >= 0);
  offsets_.assign(static_cast<std::size_t>(last + 2), 0);
  // Counting sort of offsets: offsets_[t] = first event index at tick >= t.
  std::size_t e = 0;
  for (Tick t = 0; t <= last; ++t) {
    offsets_[static_cast<std::size_t>(t)] = e;
    while (e < events_.size() && events_[e].tick == t) ++e;
  }
  offsets_[static_cast<std::size_t>(last + 1)] = events_.size();
  finalized_ = true;
}

std::span<const InputSpike> InputSchedule::at(Tick tick) const {
  assert(finalized_);
  if (tick < 0 || static_cast<std::size_t>(tick) + 1 >= offsets_.size()) return {};
  const std::size_t b = offsets_[static_cast<std::size_t>(tick)];
  const std::size_t f = offsets_[static_cast<std::size_t>(tick) + 1];
  return {events_.data() + b, f - b};
}

Tick InputSchedule::last_tick() const noexcept {
  return events_.empty() ? -1 : events_.back().tick;
}

}  // namespace nsc::core
