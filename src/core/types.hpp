// Fundamental types of the neurosynaptic kernel (paper §III).
//
// A system is a 2D array of chips; a chip is a 2D array of neurosynaptic
// cores; a core couples kCoreSize input axons to kCoreSize neurons through a
// binary crossbar. All coordinates below exist to make spike routing and hop
// accounting explicit.
#pragma once

#include <cstdint>

namespace nsc::core {

/// Discrete simulation time step ("tick"); nominally 1 ms of biological time.
using Tick = std::int64_t;

/// Axons / neurons per core, and crossbar dimension (256 in TrueNorth).
inline constexpr int kCoreSize = 256;

/// Axonal delays are programmable from 1 to 15 ticks (4-bit field).
inline constexpr int kMinDelay = 1;
inline constexpr int kMaxDelay = 15;

/// Number of axon types; each neuron holds one signed weight per type.
inline constexpr int kAxonTypes = 4;

/// Membrane potential is a 20-bit signed integer in hardware.
inline constexpr std::int32_t kPotentialMax = (1 << 19) - 1;
inline constexpr std::int32_t kPotentialMin = -(1 << 19);

/// Per-type synaptic weights and the leak are signed 9-bit in hardware.
inline constexpr int kWeightMin = -256;
inline constexpr int kWeightMax = 255;

/// Thresholds (positive and negative) are 18-bit unsigned magnitudes.
inline constexpr std::int32_t kThresholdMax = (1 << 18) - 1;

/// Dense index of a core within the whole (possibly multi-chip) system.
using CoreId = std::uint32_t;

/// Sentinel for "no core".
inline constexpr CoreId kInvalidCore = 0xFFFFFFFFu;

/// Grid shape of the system. Cores are indexed chip-major, then row-major
/// within a chip; `GlobalXY` gives seamless global mesh coordinates (chips
/// tile edge-to-edge, paper Fig. 3(c)).
struct Geometry {
  int chips_x = 1;        ///< Chips along x.
  int chips_y = 1;        ///< Chips along y.
  int cores_x = 64;       ///< Cores along x within one chip (64 in TrueNorth).
  int cores_y = 64;       ///< Cores along y within one chip.

  [[nodiscard]] constexpr int cores_per_chip() const noexcept { return cores_x * cores_y; }
  [[nodiscard]] constexpr int chips() const noexcept { return chips_x * chips_y; }
  [[nodiscard]] constexpr int total_cores() const noexcept { return chips() * cores_per_chip(); }
  [[nodiscard]] constexpr int neurons() const noexcept { return total_cores() * kCoreSize; }

  /// Chip index (0..chips) containing `c`.
  [[nodiscard]] constexpr int chip_of(CoreId c) const noexcept {
    return static_cast<int>(c) / cores_per_chip();
  }

  struct XY {
    int x;
    int y;
  };

  /// Core position within its chip.
  [[nodiscard]] constexpr XY local_xy(CoreId c) const noexcept {
    const int l = static_cast<int>(c) % cores_per_chip();
    return {l % cores_x, l / cores_x};
  }

  /// Chip position within the board/system.
  [[nodiscard]] constexpr XY chip_xy(CoreId c) const noexcept {
    const int ch = chip_of(c);
    return {ch % chips_x, ch / chips_x};
  }

  /// Seamless global mesh coordinates of a core across chip boundaries.
  [[nodiscard]] constexpr XY global_xy(CoreId c) const noexcept {
    const XY l = local_xy(c);
    const XY ch = chip_xy(c);
    return {ch.x * cores_x + l.x, ch.y * cores_y + l.y};
  }

  /// CoreId from chip index and local position.
  [[nodiscard]] constexpr CoreId core_at(int chip, int x, int y) const noexcept {
    return static_cast<CoreId>(chip * cores_per_chip() + y * cores_x + x);
  }

  /// CoreId from global mesh coordinates.
  [[nodiscard]] constexpr CoreId core_at_global(int gx, int gy) const noexcept {
    const int cx = gx / cores_x, lx = gx % cores_x;
    const int cy = gy / cores_y, ly = gy % cores_y;
    return core_at(cy * chips_x + cx, lx, ly);
  }

  friend constexpr bool operator==(const Geometry&, const Geometry&) = default;
};

/// TrueNorth full-chip geometry: 64×64 cores = 4,096 cores, 1M neurons.
[[nodiscard]] constexpr Geometry truenorth_chip() noexcept { return Geometry{1, 1, 64, 64}; }

/// A spike in flight or recorded: emitted by `neuron` on `core`.
struct Spike {
  Tick tick;        ///< Tick at which the neuron fired.
  CoreId core;
  std::uint16_t neuron;

  friend constexpr bool operator==(const Spike&, const Spike&) = default;
  friend constexpr auto operator<=>(const Spike&, const Spike&) = default;
};

/// Destination of a neuron's spikes: one axon on one core, after `delay`
/// ticks. Each TrueNorth neuron has exactly one programmable target; fan-out
/// beyond 256 is achieved by splitter cores (see corelet library).
struct AxonTarget {
  CoreId core = kInvalidCore;
  std::uint16_t axon = 0;
  std::uint8_t delay = kMinDelay;

  [[nodiscard]] constexpr bool valid() const noexcept { return core != kInvalidCore; }

  friend constexpr bool operator==(const AxonTarget&, const AxonTarget&) = default;
};

/// External input event: a spike presented to (core, axon) at `tick`
/// (delay already resolved; it is processed in that tick's synapse phase).
struct InputSpike {
  Tick tick;
  CoreId core;
  std::uint16_t axon;

  friend constexpr bool operator==(const InputSpike&, const InputSpike&) = default;
  friend constexpr auto operator<=>(const InputSpike&, const InputSpike&) = default;
};

}  // namespace nsc::core
