#include "src/core/validation.hpp"

#include <sstream>
#include <stdexcept>

namespace nsc::core {

std::vector<ValidationIssue> validate(const Network& net) {
  std::vector<ValidationIssue> issues;
  const auto ncores = static_cast<CoreId>(net.geom.total_cores());
  if (net.cores.size() != ncores) {
    issues.push_back({"core vector size does not match geometry", kInvalidCore, -1});
    return issues;
  }
  for (CoreId c = 0; c < ncores; ++c) {
    const CoreSpec& spec = net.core(c);
    for (int i = 0; i < kCoreSize; ++i) {
      if (spec.axon_type[static_cast<std::size_t>(i)] >= kAxonTypes) {
        issues.push_back({"axon type out of range", c, i});
      }
    }
    for (int j = 0; j < kCoreSize; ++j) {
      const NeuronParams& p = spec.neuron[j];
      if (!p.enabled) continue;
      if (spec.disabled) {
        issues.push_back({"enabled neuron on disabled core", c, j});
      }
      if (p.threshold <= 0) {
        issues.push_back({"threshold must be positive", c, j});
      }
      if (p.neg_threshold < 0) {
        issues.push_back({"negative threshold must be >= 0", c, j});
      }
      if (p.target.valid()) {
        if (p.target.core >= ncores) {
          issues.push_back({"target core out of range", c, j});
        } else if (net.core(p.target.core).disabled) {
          issues.push_back({"target core is disabled", c, j});
        }
        if (p.target.delay < kMinDelay || p.target.delay > kMaxDelay) {
          issues.push_back({"axonal delay out of [1,15]", c, j});
        }
      }
    }
  }
  return issues;
}

void validate_or_throw(const Network& net) {
  const auto issues = validate(net);
  if (issues.empty()) return;
  std::ostringstream os;
  os << "network validation failed with " << issues.size() << " issue(s):";
  const std::size_t show = issues.size() < 5 ? issues.size() : 5;
  for (std::size_t i = 0; i < show; ++i) {
    os << "\n  core " << issues[i].core << " neuron " << issues[i].neuron << ": "
       << issues[i].message;
  }
  throw std::runtime_error(os.str());
}

}  // namespace nsc::core
