// Checkpoint snapshots: versioned binary images of a simulator's full
// dynamic state (tick counter, membrane potentials, 16-slot axonal delay
// buffers, runtime fault state, kernel counters), so long campaigns can be
// interrupted and resumed bit-exactly — the resumed run must be
// spike-for-spike identical to an uninterrupted one, on either kernel
// expression (docs/RESILIENCE.md).
//
// The format is backend-agnostic: the state both expressions share *is* the
// kernel state, so a checkpoint taken on TrueNorth restores into Compass and
// vice versa (the backend tag is informational). Like the network model
// format (network_io), the file opens with a magic + version header, and the
// loader validates every count against the header geometry and the stream
// size *before* allocating, so a corrupted or hostile header cannot trigger
// multi-gigabyte allocations.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "src/core/network.hpp"

namespace nsc::core {

/// Backend that produced a snapshot (informational; any backend may load any
/// snapshot because the serialized state is the shared kernel state).
enum class SnapshotBackend : std::uint8_t {
  kUnknown = 0,
  kTrueNorth = 1,
  kCompass = 2,
};

/// A simulator's full dynamic state, decoupled from any backend's internals.
/// Backends fill one on save and consume one on restore.
struct Snapshot {
  SnapshotBackend backend = SnapshotBackend::kUnknown;
  Geometry geom;
  std::uint64_t net_seed = 0;  ///< Seed of the network the state belongs to.
  Tick tick = 0;               ///< Simulator clock (`now()`) at capture.
  KernelStats stats;

  /// Per-core liveness: 1 = dead (statically disabled or failed mid-run by a
  /// fault campaign). Size total_cores, or empty when no core is dead.
  std::vector<std::uint8_t> dead_cores;
  /// Per directed inter-chip link liveness, indexed chip * 4 + dir
  /// (dir: 0=E, 1=W, 2=N, 3=S). Size chips * 4, or empty when none failed.
  std::vector<std::uint8_t> dead_links;

  /// Membrane potentials, core-major: total_cores * kCoreSize entries.
  std::vector<std::int32_t> v;
  /// Delay-buffer bit words: total_cores * 16 slots * 4 words per slot.
  std::vector<std::uint64_t> delay_words;

  /// Backend-specific named counters (e.g. Compass "messages", the fault.*
  /// observability counters). Unknown names are preserved on a round trip
  /// and ignored by backends that do not use them.
  std::vector<std::pair<std::string, std::uint64_t>> extras;

  /// Inter-chip traffic totals (TrueNorth): per directed link, chip * 4 + dir.
  /// Empty when the producing backend does not track traffic.
  std::vector<std::uint64_t> traffic_link_totals;
  std::uint64_t traffic_total = 0;
  std::uint64_t traffic_max_per_tick = 0;

  [[nodiscard]] std::uint64_t extra(std::string_view name) const noexcept;
  void set_extra(std::string_view name, std::uint64_t value);
};

/// Serializes `snap` (magic + version header, then the sections above).
/// Throws std::runtime_error on I/O failure.
void save_snapshot(const Snapshot& snap, std::ostream& os);
void save_snapshot(const Snapshot& snap, const std::string& path);

/// Deserializes a snapshot; throws std::runtime_error on truncated,
/// corrupted, or implausible input. All counts are validated against the
/// header geometry and the remaining stream size before any allocation.
[[nodiscard]] Snapshot load_snapshot(std::istream& is);
[[nodiscard]] Snapshot load_snapshot(const std::string& path);

/// Bytes left between the stream's current position and its end, or
/// UINT64_MAX when the stream is not seekable. Used to reject headers whose
/// claimed payload exceeds the actual file before allocating for it.
[[nodiscard]] std::uint64_t stream_remaining(std::istream& is);

/// Convenience wrappers over Simulator::save_checkpoint/load_checkpoint.
void save_checkpoint(const Simulator& sim, const std::string& path);
void load_checkpoint(Simulator& sim, const std::string& path);

}  // namespace nsc::core
