// Dense reference simulator: the semantic gold standard and the ablation
// baseline for the event-driven kernel.
//
// Instead of the kernel's event-driven synapse phase, this simulator scans
// every (axon, neuron) pair of every core on every tick — the "alternative
// approach that loops over all synapses" the paper's kernel explicitly
// improves on (§III, "Event-based computation"). It is deliberately simple
// and slow: a third, independent witness for the 1:1 equivalence tests and
// the baseline for the event-vs-dense micro bench.
#pragma once

#include <vector>

#include "src/core/input_schedule.hpp"
#include "src/core/network.hpp"
#include "src/util/bitrow.hpp"
#include "src/util/prng.hpp"

namespace nsc::core {

class ReferenceSimulator final : public Simulator {
 public:
  /// The network must outlive the simulator (it is the read-only program;
  /// simulators keep only mutable neuron/axon state).
  explicit ReferenceSimulator(const Network& net);

  void run(Tick nticks, const InputSchedule* inputs, SpikeSink* sink) override;
  [[nodiscard]] Tick now() const override { return now_; }
  [[nodiscard]] const KernelStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.reset(); }

  /// Current membrane potential (for white-box tests).
  [[nodiscard]] std::int32_t potential(CoreId core, int neuron) const {
    return v_[static_cast<std::size_t>(core) * kCoreSize + static_cast<std::size_t>(neuron)];
  }

 private:
  static constexpr int kDelaySlots = kMaxDelay + 1;

  [[nodiscard]] util::BitRow256& slot(CoreId core, Tick tick) {
    return delay_[static_cast<std::size_t>(core) * kDelaySlots +
                  static_cast<std::size_t>(tick % kDelaySlots)];
  }

  const Network& net_;
  util::CounterPrng prng_;
  Tick now_ = 0;
  KernelStats stats_;
  std::vector<std::int32_t> v_;          ///< Membrane potentials, core-major.
  std::vector<util::BitRow256> delay_;   ///< 16 axon-vector slots per core.
};

}  // namespace nsc::core
