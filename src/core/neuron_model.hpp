// The TrueNorth digital neuron (Cassidy et al., IJCNN 2013 — the model the
// paper's kernel executes; see paper §III, Listing 1 and §V "SOPS").
//
// Per tick, a neuron j:
//   1. Synapse phase: for every active axon i with W[i][j] = 1, integrates
//      the per-type signed weight S^{G_i}_j (deterministically or
//      stochastically) — this conditional weighted-accumulate is one
//      "synaptic operation" (SOP), the paper's fundamental unit of work.
//   2. Leak phase: adds the signed leak λ_j (deterministic or stochastic).
//   3. Threshold phase: fires if V ≥ α_j + (draw & Mα_j); on firing, resets
//      per the configured reset mode. A negative floor β_j either saturates
//      or resets the potential from below.
//
// These functions are the single source of truth for the arithmetic: the
// TrueNorth expression (src/tn), the Compass expression (src/compass) and
// the dense reference simulator all call them, so any spike mismatch between
// expressions isolates an event-plumbing bug, not a modelling divergence.
#pragma once

#include <cstdint>

#include "src/core/types.hpp"
#include "src/util/prng.hpp"

namespace nsc::core {

/// What happens to V when the neuron fires (positive threshold crossing).
enum class ResetMode : std::uint8_t {
  kAbsolute = 0,  ///< V <- reset_v ("zero reset" when reset_v == 0).
  kLinear = 1,    ///< V <- V - α (carries the overshoot into the next tick).
  kNone = 2,      ///< V unchanged (free-running; used by accumulator corelets).
};

/// What happens at the negative floor β.
enum class NegativeMode : std::uint8_t {
  kSaturate = 0,  ///< V <- -β when V < -β.
  kReset = 1,     ///< V <- -reset_v when V ≤ -β (symmetric reset).
};

/// Full per-neuron programmable parameter set.
struct NeuronParams {
  std::int16_t weight[kAxonTypes] = {0, 0, 0, 0};  ///< S^G_j, signed 9-bit in HW.
  std::int16_t leak = 0;                           ///< λ_j, signed 9-bit in HW.
  std::int32_t threshold = 1;                      ///< α_j > 0, 18-bit in HW.
  std::int32_t neg_threshold = 0;                  ///< β_j >= 0 (floor at -β).
  std::int32_t reset_v = 0;                        ///< Reset potential R_j.
  std::int32_t init_v = 0;                         ///< Membrane potential at t = 0.
  std::uint32_t threshold_mask = 0;                ///< Mα: stochastic threshold jitter.
  std::uint8_t stochastic_weight = 0;              ///< Bit g: type-g synapses stochastic.
  std::uint8_t stochastic_leak = 0;                ///< Nonzero: leak stochastic.
  /// Leak-reversal flag ε_j (IJCNN'13): the leak's sign follows sgn(V), so a
  /// positive λ drives V away from zero and a negative λ decays it toward
  /// zero from either side (the idiom for symmetric decay of signed
  /// evidence). V == 0 leaks nothing in this mode.
  std::uint8_t leak_reversal = 0;
  ResetMode reset_mode = ResetMode::kAbsolute;
  NegativeMode negative_mode = NegativeMode::kSaturate;
  AxonTarget target;                               ///< Where this neuron's spikes go.
  std::uint8_t enabled = 1;                        ///< Disabled neurons never update.
};

/// PRNG draw salts: each phase of the neuron update consumes an independent
/// stream keyed by (core, neuron, tick, salt). Synapse draws use the axon
/// index (0..255) directly.
inline constexpr std::uint32_t kSaltLeak = 0x100;
inline constexpr std::uint32_t kSaltThreshold = 0x101;

/// Clamps v into the hardware's 20-bit signed membrane-potential range.
[[nodiscard]] constexpr std::int32_t clamp_potential(std::int64_t v) noexcept {
  if (v > kPotentialMax) return kPotentialMax;
  if (v < kPotentialMin) return kPotentialMin;
  return static_cast<std::int32_t>(v);
}

/// Synaptic contribution of one active synapse of axon type `g`.
///
/// Deterministic mode adds the signed weight. Stochastic mode draws an 8-bit
/// uniform and adds sign(S) when draw < |S| — expected value S/256 per event,
/// emulating the chip's probabilistic integration (paper §III-A).
[[nodiscard]] inline std::int32_t synapse_delta(const NeuronParams& p, int g,
                                                const util::CounterPrng& prng, std::uint32_t core,
                                                std::uint32_t neuron, Tick tick,
                                                std::uint32_t axon) noexcept {
  const std::int32_t s = p.weight[g];
  if ((p.stochastic_weight & (1u << g)) == 0) return s;
  const std::uint32_t draw =
      static_cast<std::uint32_t>(prng.draw(core, neuron, static_cast<std::uint64_t>(tick), axon) &
                                 0xFF);
  const std::int32_t mag = s < 0 ? -s : s;
  if (static_cast<std::int32_t>(draw) >= mag) return 0;
  return s < 0 ? -1 : 1;
}

/// Leak contribution for one tick (deterministic or stochastic, as synapses).
/// `v` is the pre-leak potential, consulted only by the leak-reversal mode.
[[nodiscard]] inline std::int32_t leak_delta(const NeuronParams& p, const util::CounterPrng& prng,
                                             std::uint32_t core, std::uint32_t neuron, Tick tick,
                                             std::int32_t v) noexcept {
  std::int32_t l = p.leak;
  if (p.leak_reversal != 0) {
    if (v == 0) return 0;
    if (v < 0) l = static_cast<std::int32_t>(-l);
  }
  if (p.stochastic_leak == 0) return l;
  if (l == 0) return 0;  // |λ| = 0 never passes the comparison; elide the draw
  const std::uint32_t draw = static_cast<std::uint32_t>(
      prng.draw(core, neuron, static_cast<std::uint64_t>(tick), kSaltLeak) & 0xFF);
  const std::int32_t mag = l < 0 ? -l : l;
  if (static_cast<std::int32_t>(draw) >= mag) return 0;
  return l < 0 ? -1 : 1;
}

/// Threshold/fire/reset phase. `v` holds the post-leak potential on entry and
/// the post-reset potential on exit. Returns true if the neuron fired.
[[nodiscard]] inline bool threshold_fire_reset(std::int32_t& v, const NeuronParams& p,
                                               const util::CounterPrng& prng, std::uint32_t core,
                                               std::uint32_t neuron, Tick tick) noexcept {
  std::int32_t alpha = p.threshold;
  if (p.threshold_mask != 0 &&
      (v >= alpha || static_cast<std::int32_t>(p.threshold_mask) < 0)) {
    // Draw elision: when v < α and the mask has bit 31 clear, the jitter
    // (draw & Mα, interpreted signed) is non-negative, so it can only raise
    // the effective threshold and the no-fire outcome is already decided.
    // Draws are stateless (counter-based), so skipping one perturbs nothing.
    const std::uint32_t draw = static_cast<std::uint32_t>(
        prng.draw(core, neuron, static_cast<std::uint64_t>(tick), kSaltThreshold));
    alpha += static_cast<std::int32_t>(draw & p.threshold_mask);
  }
  if (v >= alpha) {
    switch (p.reset_mode) {
      case ResetMode::kAbsolute: v = p.reset_v; break;
      case ResetMode::kLinear: v = clamp_potential(static_cast<std::int64_t>(v) - alpha); break;
      case ResetMode::kNone: break;
    }
    return true;
  }
  const std::int32_t floor = -p.neg_threshold;
  if (p.negative_mode == NegativeMode::kSaturate) {
    if (v < floor) v = floor;
  } else {
    if (v <= floor) v = -p.reset_v;
  }
  return false;
}

/// Convenience: full leak+threshold update (phases 2–3). Synaptic input must
/// already be folded into `v` by the caller's event loop. Inline: this runs
/// once per enabled neuron per visited tick — the kernel's innermost call.
[[nodiscard]] inline bool leak_threshold_update(std::int32_t& v, const NeuronParams& p,
                                                const util::CounterPrng& prng, std::uint32_t core,
                                                std::uint32_t neuron, Tick tick) noexcept {
  v = clamp_potential(static_cast<std::int64_t>(v) + leak_delta(p, prng, core, neuron, tick, v));
  return threshold_fire_reset(v, p, prng, core, neuron, tick);
}

/// Parameter-only activity test: true when the neuron can change state (or
/// fire) on a tick with zero synaptic input *regardless of its potential* —
/// a nonzero non-reversal leak moves V from any value, and a threshold mask
/// with bit 31 set makes the jitter signed, so firing below α is possible.
/// Cores containing such a neuron are permanently on the event-driven
/// worklist (`always_active`); everything else is evaluated per state.
[[nodiscard]] constexpr bool has_idle_dynamics(const NeuronParams& p) noexcept {
  return (p.leak != 0 && p.leak_reversal == 0) ||
         static_cast<std::int32_t>(p.threshold_mask) < 0;
}

/// True when a tick with zero synaptic input leaves (V, spike output) of
/// this neuron exactly unchanged — the predicate the event-driven worklists
/// rest on. Why skipping is exact (docs/PERFORMANCE.md):
///   - leak: must contribute 0 — either λ = 0, or leak reversal at V = 0
///     (both return before any stochastic draw);
///   - threshold: V < α and jitter non-negative (mask bit 31 clear) means no
///     fire, and the draw is elided by threshold_fire_reset on that exact
///     condition, so no randomness is consumed (and draws are stateless, so
///     consumption does not matter anyway);
///   - negative floor: saturation is a no-op for V ≥ -β; symmetric reset is
///     a no-op unless V ≤ -β with V ≠ -R (the fixed point -R is quiescent).
/// The predicate depends only on (params, V), so a quiescent neuron stays
/// quiescent until synaptic input arrives — idleness is a fixed point, and
/// a core may sleep for any number of ticks, not just one.
[[nodiscard]] constexpr bool idle_quiescent(const NeuronParams& p, std::int32_t v) noexcept {
  if (p.leak != 0 && (p.leak_reversal == 0 || v != 0)) return false;
  if (static_cast<std::int32_t>(p.threshold_mask) < 0) return false;
  if (v >= p.threshold) return false;
  const std::int32_t floor = -p.neg_threshold;
  if (p.negative_mode == NegativeMode::kSaturate) {
    if (v < floor) return false;
  } else {
    if (v <= floor && v != -p.reset_v) return false;
  }
  return true;
}

}  // namespace nsc::core
