// Spike-train analysis: the measurement toolkit behind the paper's reported
// network statistics (mean firing rates per application, §IV-B) and the
// diagnostics a practitioner needs when a corelet misbehaves — per-neuron
// rates, inter-spike-interval statistics, population synchrony, and
// tick-resolution population traces.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/types.hpp"

namespace nsc::core {

/// Summary of one recorded spike stream over [0, ticks).
struct SpikeTrainStats {
  std::uint64_t spikes = 0;
  double mean_rate_hz = 0.0;       ///< Per enabled neuron, at 1 kHz ticks.
  double active_fraction = 0.0;    ///< Neurons that fired at least once.
  double isi_mean = 0.0;           ///< Mean inter-spike interval (ticks).
  double isi_cv = 0.0;             ///< ISI coefficient of variation
                                   ///  (0 = clockwork, ~1 = Poisson-like).
  double synchrony = 0.0;          ///< Var(per-tick count)/Mean(per-tick
                                   ///  count); 1 = Poisson, >1 = synchronized.
  std::uint32_t peak_tick_count = 0;
};

/// Analyzes `spikes` (canonical order not required) for a population of
/// `neurons` observed over `ticks` ticks starting at tick `t0`.
[[nodiscard]] SpikeTrainStats analyze_spikes(const std::vector<Spike>& spikes,
                                             std::uint64_t neurons, Tick t0, Tick ticks);

/// Per-tick population spike counts over [t0, t0 + ticks).
[[nodiscard]] std::vector<std::uint32_t> population_trace(const std::vector<Spike>& spikes,
                                                          Tick t0, Tick ticks);

/// Spike counts per neuron (flat core*256+neuron indexing, size = neurons).
[[nodiscard]] std::vector<std::uint32_t> per_neuron_counts(const std::vector<Spike>& spikes,
                                                           std::uint64_t neurons);

}  // namespace nsc::core
