#include "src/core/snapshot.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace nsc::core {
namespace {

constexpr std::uint32_t kMagic = 0x4E53434Bu;  // "NSCK"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kMaxExtras = 64;
constexpr std::uint32_t kMaxExtraName = 64;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
void read_pod(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("checkpoint file truncated");
}

template <typename T>
void write_vec(std::ostream& os, const std::vector<T>& v) {
  if (!v.empty()) {
    os.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
  }
}

template <typename T>
void read_vec(std::istream& is, std::vector<T>& v, std::size_t n) {
  v.resize(n);
  if (n != 0) {
    is.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n * sizeof(T)));
    if (!is) throw std::runtime_error("checkpoint file truncated");
  }
}

}  // namespace

std::uint64_t Snapshot::extra(std::string_view name) const noexcept {
  for (const auto& [k, v] : extras) {
    if (k == name) return v;
  }
  return 0;
}

void Snapshot::set_extra(std::string_view name, std::uint64_t value) {
  for (auto& [k, v] : extras) {
    if (k == name) {
      v = value;
      return;
    }
  }
  extras.emplace_back(std::string(name), value);
}

std::uint64_t stream_remaining(std::istream& is) {
  const std::istream::pos_type here = is.tellg();
  if (here == std::istream::pos_type(-1)) return std::numeric_limits<std::uint64_t>::max();
  is.seekg(0, std::ios::end);
  const std::istream::pos_type end = is.tellg();
  is.seekg(here);
  if (end == std::istream::pos_type(-1) || end < here) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return static_cast<std::uint64_t>(end - here);
}

void save_snapshot(const Snapshot& snap, std::ostream& os) {
  const auto ncores = static_cast<std::size_t>(snap.geom.total_cores());
  const auto nlinks = static_cast<std::size_t>(snap.geom.chips()) * 4;
  if (snap.v.size() != ncores * kCoreSize ||
      snap.delay_words.size() != ncores * (kMaxDelay + 1) * 4 ||
      (!snap.dead_cores.empty() && snap.dead_cores.size() != ncores) ||
      (!snap.dead_links.empty() && snap.dead_links.size() != nlinks) ||
      (!snap.traffic_link_totals.empty() && snap.traffic_link_totals.size() != nlinks)) {
    throw std::runtime_error("snapshot state sizes do not match its geometry");
  }
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint8_t>(snap.backend));
  write_pod(os, snap.geom.chips_x);
  write_pod(os, snap.geom.chips_y);
  write_pod(os, snap.geom.cores_x);
  write_pod(os, snap.geom.cores_y);
  write_pod(os, snap.net_seed);
  write_pod(os, snap.tick);
  const KernelStats& s = snap.stats;
  for (const std::uint64_t f : {s.ticks, s.spikes, s.sops, s.axon_events, s.neuron_updates,
                                s.hop_sum, s.interchip_crossings, s.dropped_spikes,
                                s.sum_max_core_sops, s.sum_max_core_axon_events,
                                s.sum_max_core_spikes}) {
    write_pod(os, f);
  }
  // Fault bitmaps are written dense (all-zero when the source was empty).
  if (snap.dead_cores.empty()) {
    const std::vector<std::uint8_t> zero(ncores, 0);
    write_vec(os, zero);
  } else {
    write_vec(os, snap.dead_cores);
  }
  if (snap.dead_links.empty()) {
    const std::vector<std::uint8_t> zero(nlinks, 0);
    write_vec(os, zero);
  } else {
    write_vec(os, snap.dead_links);
  }
  write_vec(os, snap.v);
  write_vec(os, snap.delay_words);
  write_pod(os, static_cast<std::uint32_t>(snap.extras.size()));
  for (const auto& [name, value] : snap.extras) {
    if (name.size() > kMaxExtraName) throw std::runtime_error("snapshot extra name too long");
    write_pod(os, static_cast<std::uint16_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_pod(os, value);
  }
  write_pod(os, static_cast<std::uint32_t>(snap.traffic_link_totals.size()));
  if (!snap.traffic_link_totals.empty()) {
    write_vec(os, snap.traffic_link_totals);
    write_pod(os, snap.traffic_total);
    write_pod(os, snap.traffic_max_per_tick);
  }
  if (!os) throw std::runtime_error("checkpoint write failed");
}

void save_snapshot(const Snapshot& snap, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  save_snapshot(snap, f);
}

Snapshot load_snapshot(std::istream& is) {
  std::uint32_t magic = 0, version = 0;
  read_pod(is, magic);
  read_pod(is, version);
  if (magic != kMagic) throw std::runtime_error("not a neurosyn checkpoint file");
  if (version != kVersion) throw std::runtime_error("unsupported checkpoint file version");
  Snapshot snap;
  std::uint8_t backend = 0;
  read_pod(is, backend);
  snap.backend = static_cast<SnapshotBackend>(backend);
  read_pod(is, snap.geom.chips_x);
  read_pod(is, snap.geom.chips_y);
  read_pod(is, snap.geom.cores_x);
  read_pod(is, snap.geom.cores_y);
  const Geometry& g = snap.geom;
  if (g.chips_x <= 0 || g.chips_y <= 0 || g.cores_x <= 0 || g.cores_y <= 0 ||
      g.total_cores() > (1 << 24)) {
    throw std::runtime_error("implausible geometry in checkpoint file");
  }
  read_pod(is, snap.net_seed);
  read_pod(is, snap.tick);
  if (snap.tick < 0) throw std::runtime_error("negative tick in checkpoint file");
  KernelStats& s = snap.stats;
  for (std::uint64_t* f : {&s.ticks, &s.spikes, &s.sops, &s.axon_events, &s.neuron_updates,
                           &s.hop_sum, &s.interchip_crossings, &s.dropped_spikes,
                           &s.sum_max_core_sops, &s.sum_max_core_axon_events,
                           &s.sum_max_core_spikes}) {
    read_pod(is, *f);
  }

  // The bulk arrays have sizes fully determined by the (validated) geometry.
  // Before allocating, make sure the stream actually holds that many bytes,
  // so a corrupted header claiming 2^24 cores against a 100-byte file throws
  // instead of attempting a multi-gigabyte allocation.
  const auto ncores = static_cast<std::size_t>(g.total_cores());
  const auto nlinks = static_cast<std::size_t>(g.chips()) * 4;
  const std::uint64_t bulk_bytes =
      static_cast<std::uint64_t>(ncores) * (1 + kCoreSize * sizeof(std::int32_t) +
                                            (kMaxDelay + 1) * 4 * sizeof(std::uint64_t)) +
      nlinks;
  if (stream_remaining(is) < bulk_bytes) {
    throw std::runtime_error("checkpoint file truncated (header claims more state than present)");
  }
  read_vec(is, snap.dead_cores, ncores);
  read_vec(is, snap.dead_links, nlinks);
  read_vec(is, snap.v, ncores * kCoreSize);
  read_vec(is, snap.delay_words, ncores * (kMaxDelay + 1) * 4);

  std::uint32_t n_extras = 0;
  read_pod(is, n_extras);
  if (n_extras > kMaxExtras) throw std::runtime_error("implausible extras count in checkpoint");
  for (std::uint32_t i = 0; i < n_extras; ++i) {
    std::uint16_t len = 0;
    read_pod(is, len);
    if (len > kMaxExtraName) throw std::runtime_error("implausible extra name in checkpoint");
    std::string name(len, '\0');
    is.read(name.data(), len);
    if (!is) throw std::runtime_error("checkpoint file truncated");
    std::uint64_t value = 0;
    read_pod(is, value);
    snap.extras.emplace_back(std::move(name), value);
  }

  std::uint32_t n_traffic = 0;
  read_pod(is, n_traffic);
  if (n_traffic != 0) {
    if (n_traffic != nlinks) {
      throw std::runtime_error("checkpoint traffic section does not match its geometry");
    }
    read_vec(is, snap.traffic_link_totals, nlinks);
    read_pod(is, snap.traffic_total);
    read_pod(is, snap.traffic_max_per_tick);
  }
  return snap;
}

Snapshot load_snapshot(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path);
  return load_snapshot(f);
}

void save_checkpoint(const Simulator& sim, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  sim.save_checkpoint(f);
}

void load_checkpoint(Simulator& sim, const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path);
  sim.load_checkpoint(f);
}

}  // namespace nsc::core
