#include "src/core/reference_sim.hpp"

#include <algorithm>

namespace nsc::core {

ReferenceSimulator::ReferenceSimulator(const Network& net)
    : net_(net),
      prng_(net.seed),
      v_(static_cast<std::size_t>(net.geom.total_cores()) * kCoreSize, 0),
      delay_(static_cast<std::size_t>(net.geom.total_cores()) * kDelaySlots) {
  for (CoreId c = 0; c < static_cast<CoreId>(net.geom.total_cores()); ++c) {
    for (int j = 0; j < kCoreSize; ++j) {
      v_[static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j)] =
          net.core(c).neuron[j].init_v;
    }
  }
}

void ReferenceSimulator::run(Tick nticks, const InputSchedule* inputs, SpikeSink* sink) {
  const int ncores = net_.geom.total_cores();
  for (Tick step = 0; step < nticks; ++step) {
    const Tick t = now_;
    std::uint64_t max_sops = 0, max_axons = 0, max_spikes = 0;

    // Merge external inputs into this tick's axon vectors.
    if (inputs != nullptr) {
      for (const InputSpike& s : inputs->at(t)) {
        if (s.core < static_cast<CoreId>(ncores) && !net_.core(s.core).disabled) {
          slot(s.core, t).set(s.axon);
        }
      }
    }

    for (CoreId c = 0; c < static_cast<CoreId>(ncores); ++c) {
      const CoreSpec& spec = net_.core(c);
      util::BitRow256& axons = slot(c, t);
      if (spec.disabled) {
        axons.reset();
        continue;
      }
      const std::uint64_t core_axons = static_cast<std::uint64_t>(axons.count());
      std::uint64_t core_sops = 0, core_spikes = 0;

      for (int j = 0; j < kCoreSize; ++j) {
        const NeuronParams& p = spec.neuron[j];
        if (!p.enabled) continue;
        std::int64_t v = v_[static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j)];

        // Dense synapse phase: scan every axon, active or not.
        for (int i = 0; i < kCoreSize; ++i) {
          if (!axons.test(i) || !spec.crossbar.test(i, j)) continue;
          v += synapse_delta(p, spec.axon_type[static_cast<std::size_t>(i)], prng_, c,
                             static_cast<std::uint32_t>(j), t, static_cast<std::uint32_t>(i));
          ++core_sops;
        }
        std::int32_t vc = clamp_potential(v);

        ++stats_.neuron_updates;
        const bool fired = leak_threshold_update(vc, p, prng_, c, static_cast<std::uint32_t>(j), t);
        v_[static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j)] = vc;

        if (fired) {
          ++core_spikes;
          if (sink != nullptr) sink->on_spike(t, c, static_cast<std::uint16_t>(j));
          if (p.target.valid() && p.target.core < static_cast<CoreId>(ncores) &&
              !net_.core(p.target.core).disabled) {
            slot(p.target.core, t + p.target.delay).set(p.target.axon);
          } else {
            ++stats_.dropped_spikes;
          }
        }
      }

      axons.reset();  // Slot becomes the (t + kDelaySlots) buffer.
      stats_.sops += core_sops;
      stats_.axon_events += core_axons;
      stats_.spikes += core_spikes;
      max_sops = std::max(max_sops, core_sops);
      max_axons = std::max(max_axons, core_axons);
      max_spikes = std::max(max_spikes, core_spikes);
    }

    stats_.sum_max_core_sops += max_sops;
    stats_.sum_max_core_axon_events += max_axons;
    stats_.sum_max_core_spikes += max_spikes;
    ++stats_.ticks;
    if (sink != nullptr) sink->on_tick_end(t);
    ++now_;
  }
}

}  // namespace nsc::core
