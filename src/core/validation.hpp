// Network validation: catches mis-programmed models before deployment, the
// software analogue of the Corelet Programming Environment's checks.
#pragma once

#include <string>
#include <vector>

#include "src/core/network.hpp"

namespace nsc::core {

/// One validation finding, with the location that triggered it.
struct ValidationIssue {
  std::string message;
  CoreId core = kInvalidCore;
  int neuron = -1;  ///< -1 when the issue is core-level.
};

/// Validates `net` and returns all issues (empty means deployable):
///  - every neuron target core in range and not disabled;
///  - delays within [kMinDelay, kMaxDelay];
///  - thresholds positive; negative thresholds non-negative;
///  - axon types < kAxonTypes;
///  - enabled neurons on disabled cores (configuration smell).
[[nodiscard]] std::vector<ValidationIssue> validate(const Network& net);

/// Throws std::runtime_error listing the first issues if validation fails.
void validate_or_throw(const Network& net);

}  // namespace nsc::core
