// Precomputed hot-path constants for homogeneous deterministic cores — the
// second half of the event-driven optimization (docs/PERFORMANCE.md).
//
// The worklists (core::ActiveSet) decide *which* cores a tick touches; this
// header makes the touched cores cheap. The generic neuron loop reads a
// ~48-byte NeuronParams per neuron and branches on every stochastic mode
// flag; for the common core whose neurons are all enabled and fully
// deterministic (no stochastic leak/weights, no leak reversal, unsigned
// threshold jitter) the per-tick update only ever needs three 32-bit
// constants per neuron — the leak, the base threshold, and the negative
// floor trigger — plus a dense per-axon-type weight row for synaptic
// integration. The constants are stored structure-of-arrays (one 1 KiB row
// per constant per core) so hot_neuron_sweep below is a branch-free int32
// loop over three sequential streams that the compiler can vectorize.
//
// Exactness: the fast sweep only decides *non-events*. A neuron leaves the
// fast path the moment v >= alpha (possible fire: the exact
// core::threshold_fire_reset runs, drawing jitter under the same condition
// the generic path does) or v <= floor_le (the negative floor would act:
// again the exact slow function runs). Everything in between is provably a
// pure "add leak, no fire, no floor" tick, which the fast path computes with
// the same clamped arithmetic as core::leak_threshold_update.
//
// Why the sweep may use int32 arithmetic while the generic path clamps in
// int64: eligibility bounds every input. |v| <= 2^20 (kHotPotentialBound,
// checked when the tables are built; every later write is a clamped value,
// a bounded reset, or a bounded floor), |acc| <= 256 * 256 < 2^17 (weights
// bounded to the hardware range), |leak| <= 2^20. Worst-case intermediate
// magnitude is < 2^21, far from int32 overflow, so the int32 adds equal the
// generic path's int64 adds exactly.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "src/core/network.hpp"
#include "src/core/neuron_model.hpp"
#include "src/core/types.hpp"

namespace nsc::core {

/// SoA stride: three int32 rows per core (leak | alpha | floor_le), each
/// kCoreSize long. `hot[0..255]` = leak, `[256..511]` = base threshold α,
/// `[512..767]` = the slow-path trigger (v <= floor_le means the negative
/// floor would act).
inline constexpr std::size_t kHotStride = 3 * static_cast<std::size_t>(kCoreSize);

/// Number of int16 weight-table entries per core: one dense row per axon
/// type, so `wtab[g * kCoreSize + j]` replaces the per-synapse NeuronParams
/// load of `neuron[j].weight[g]`.
inline constexpr std::size_t kWeightTabPerCore =
    static_cast<std::size_t>(kAxonTypes) * static_cast<std::size_t>(kCoreSize);

/// Bounds that make the int32 fast-path arithmetic provably overflow-free.
/// kHotPotentialBound has a tick of slack beyond the hardware clamp range:
/// symmetric-reset can legally write -reset_v = 2^19 (one past
/// kPotentialMax), and snapshots are accepted up to the same slack.
inline constexpr std::int32_t kHotPotentialBound = 1 << 20;
inline constexpr std::int32_t kHotLeakBound = 1 << 20;

/// True when `spec` qualifies for the fast path: every neuron enabled (the
/// fast sweep is a plain 0..255 pass) and every neuron fully deterministic —
/// no stochastic weights or leak, no leak reversal, and a threshold mask
/// with bit 31 clear (signed jitter could fire below α, which the fast
/// path's `v < alpha` test would miss). The magnitude bounds keep the int32
/// sweep overflow-free (header comment) and the int16 weight table exact.
[[nodiscard]] inline bool core_hot_eligible(const CoreSpec& spec, int enabled_count) {
  if (enabled_count != kCoreSize) return false;
  for (int j = 0; j < kCoreSize; ++j) {
    const NeuronParams& p = spec.neuron[static_cast<std::size_t>(j)];
    if (p.stochastic_weight != 0 || p.stochastic_leak != 0 || p.leak_reversal != 0 ||
        static_cast<std::int32_t>(p.threshold_mask) < 0) {
      return false;
    }
    if (p.leak < -kHotLeakBound || p.leak > kHotLeakBound) return false;
    if (p.reset_v < kPotentialMin || p.reset_v > kPotentialMax) return false;
    for (int g = 0; g < kAxonTypes; ++g) {
      if (p.weight[g] < kWeightMin || p.weight[g] > kWeightMax) return false;
    }
  }
  return true;
}

/// True when every potential of the core is within the fast path's slack
/// bound. Freshly built simulators always qualify (v = 0); a hand-edited
/// snapshot with wild potentials demotes the core to the generic loop.
[[nodiscard]] inline bool hot_potentials_safe(const std::int32_t* vrow) {
  for (int j = 0; j < kCoreSize; ++j) {
    if (vrow[j] < -kHotPotentialBound || vrow[j] > kHotPotentialBound) return false;
  }
  return true;
}

/// Fills one eligible core's SoA constant block and weight table.
/// floor_le encodes both negative modes in one comparison: saturation acts
/// strictly below the floor (-β - 1), symmetric reset at or below it (-β);
/// taking the slow path on a no-op boundary value is harmless, missing a
/// state change would not be.
inline void fill_hot_core(const CoreSpec& spec, std::int32_t* hot, std::int16_t* wtab) {
  std::int32_t* leak = hot;
  std::int32_t* alpha = hot + kCoreSize;
  std::int32_t* floor_le = hot + 2 * kCoreSize;
  for (int j = 0; j < kCoreSize; ++j) {
    const NeuronParams& p = spec.neuron[static_cast<std::size_t>(j)];
    leak[j] = p.leak;
    alpha[j] = p.threshold;
    const std::int64_t floor = -static_cast<std::int64_t>(p.neg_threshold);
    floor_le[j] = static_cast<std::int32_t>(std::max<std::int64_t>(
        INT32_MIN, p.negative_mode == NegativeMode::kSaturate ? floor - 1 : floor));
    for (int g = 0; g < kAxonTypes; ++g) {
      wtab[static_cast<std::size_t>(g) * kCoreSize + static_cast<std::size_t>(j)] =
          static_cast<std::int16_t>(p.weight[g]);
    }
  }
}

/// Fire-path constants for one hot-core neuron, packed so the slow-path
/// lanes flagged by the sweep (possible fire or floor event) touch 24
/// sequential bytes instead of the full ~48-byte NeuronParams block — the
/// per-spike NeuronParams load is the dominant cache miss at the dense end
/// of the Fig. 5 sweep (docs/PERFORMANCE.md §kernels). Alpha and leak stay
/// in the int32 SoA rows the sweep already streams.
struct HotFire {
  std::int32_t reset_v;         ///< R_j.
  std::uint32_t threshold_mask; ///< Mα; bit 31 clear (eligibility).
  std::int32_t floor;           ///< -β_j, the exact int32 the generic path computes.
  ResetMode reset_mode;
  NegativeMode negative_mode;
  AxonTarget target;            ///< Copied verbatim for the emit path.
};

/// Fills one eligible core's fire-path constant row (kCoreSize entries).
inline void fill_hot_fire(const CoreSpec& spec, HotFire* fire) {
  for (int j = 0; j < kCoreSize; ++j) {
    const NeuronParams& p = spec.neuron[static_cast<std::size_t>(j)];
    fire[j] = HotFire{p.reset_v, p.threshold_mask, -p.neg_threshold,
                      p.reset_mode, p.negative_mode, p.target};
  }
}

/// core::threshold_fire_reset transcribed onto HotFire. Exact under the
/// eligibility contract: mask bit 31 is clear, so the generic path's
/// signed-mask disjunct is statically false and the draw happens under the
/// identical `mask != 0 && v >= alpha` condition (same counter-keyed draw,
/// so the streams match lane for lane).
[[nodiscard]] inline bool hot_fire_reset(std::int32_t& v, std::int32_t alpha, const HotFire& f,
                                         const util::CounterPrng& prng, std::uint32_t core,
                                         std::uint32_t neuron, Tick tick) noexcept {
  if (f.threshold_mask != 0 && v >= alpha) {
    const std::uint32_t draw = static_cast<std::uint32_t>(
        prng.draw(core, neuron, static_cast<std::uint64_t>(tick), kSaltThreshold));
    alpha += static_cast<std::int32_t>(draw & f.threshold_mask);
  }
  if (v >= alpha) {
    switch (f.reset_mode) {
      case ResetMode::kAbsolute: v = f.reset_v; break;
      case ResetMode::kLinear: v = clamp_potential(static_cast<std::int64_t>(v) - alpha); break;
      case ResetMode::kNone: break;
    }
    return true;
  }
  if (f.negative_mode == NegativeMode::kSaturate) {
    if (v < f.floor) v = f.floor;
  } else {
    if (v <= f.floor) v = -f.reset_v;
  }
  return false;
}

/// core::idle_quiescent transcribed onto HotFire, same eligibility argument
/// (leak_reversal == 0 makes the leak test a plain `leak != 0`; mask bit 31
/// clear removes the signed-jitter test).
[[nodiscard]] inline bool hot_idle_quiescent(std::int32_t v, std::int32_t leak,
                                             std::int32_t alpha, const HotFire& f) noexcept {
  if (leak != 0) return false;
  if (v >= alpha) return false;
  if (f.negative_mode == NegativeMode::kSaturate) {
    if (v < f.floor) return false;
  } else {
    if (v <= f.floor && v != -f.reset_v) return false;
  }
  return true;
}

namespace detail {
/// Byte → eight int16 lanes of 0 / -1 (bit i of the byte selects lane i).
/// 4 KiB, L1-resident on the hot path; used to expand a crossbar word into a
/// 64-lane select mask for the dense-word accumulate below.
struct BitSpreadLut {
  std::int16_t m[256][8];
};
inline constexpr BitSpreadLut kBitSpread = [] {
  BitSpreadLut l{};
  for (int b = 0; b < 256; ++b) {
    for (int i = 0; i < 8; ++i) {
      l.m[b][i] = ((b >> i) & 1) != 0 ? std::int16_t{-1} : std::int16_t{0};
    }
  }
  return l;
}();
}  // namespace detail

/// Words at least this dense take hot_accumulate_word; sparser words keep
/// the O(popcount) ctz walk (its loop-carried bit-clear chain wins only when
/// few bits are set).
inline constexpr int kDenseWordCut = 16;

/// Dense-word synaptic accumulate: adds `wrow[k]` into `acc[k]` for every
/// set bit k of `bits`, as a branch-free 64-lane masked add (weight & mask,
/// mask ∈ {0, -1}). No per-bit extraction and no loop-carried dependency,
/// and the int16 mask-and-widen form is one the auto-vectorizer handles.
/// `acc`/`wrow` point at the word's base lane (multiple of 64).
inline void hot_accumulate_word(std::int32_t* acc, const std::int16_t* wrow,
                                std::uint64_t bits) {
  alignas(16) std::int16_t m[64];
  for (int by = 0; by < 8; ++by) {
    std::memcpy(m + 8 * by, detail::kBitSpread.m[(bits >> (8 * by)) & 0xFFU], 16);
  }
  for (int k = 0; k < 64; ++k) {
    acc[k] += static_cast<std::int32_t>(static_cast<std::int16_t>(wrow[k] & m[k]));
  }
}

/// The fast-path integrate+leak sweep over one core: folds `acc` (when
/// non-null) and the leak into every potential with the hardware clamp after
/// each add, writes the result back to `vrow`, and records in `bad[j]`
/// whether neuron j needs the exact slow path this tick (possible fire or
/// floor event). Branch-free int32 loop over sequential rows — the form the
/// auto-vectorizer handles; exactness and overflow-freedom argued in the
/// header comment.
inline void hot_neuron_sweep(std::int32_t* vrow, const std::int32_t* acc, const std::int32_t* hot,
                             std::uint8_t* bad) {
  const std::int32_t* leak = hot;
  const std::int32_t* alpha = hot + kCoreSize;
  const std::int32_t* floor_le = hot + 2 * kCoreSize;
  if (acc != nullptr) {
    for (int j = 0; j < kCoreSize; ++j) {
      std::int32_t x = vrow[j] + acc[j];
      x = x > kPotentialMax ? kPotentialMax : x;
      x = x < kPotentialMin ? kPotentialMin : x;
      x += leak[j];
      x = x > kPotentialMax ? kPotentialMax : x;
      x = x < kPotentialMin ? kPotentialMin : x;
      vrow[j] = x;
      bad[j] = static_cast<std::uint8_t>(static_cast<int>(x >= alpha[j]) |
                                         static_cast<int>(x <= floor_le[j]));
    }
  } else {
    for (int j = 0; j < kCoreSize; ++j) {
      std::int32_t x = vrow[j] + leak[j];
      x = x > kPotentialMax ? kPotentialMax : x;
      x = x < kPotentialMin ? kPotentialMin : x;
      vrow[j] = x;
      bad[j] = static_cast<std::uint8_t>(static_cast<int>(x >= alpha[j]) |
                                         static_cast<int>(x <= floor_le[j]));
    }
  }
}

}  // namespace nsc::core
