// NetworkDescription: the shared model both kernel expressions execute.
//
// A network is a geometry plus one CoreSpec per core: crossbar bits, axon
// types, and 256 neuron parameter blocks. The paper's co-design methodology
// ("any model on the software simulator runs unchanged on the hardware",
// Fig. 2) is realized here: src/tn and src/compass both consume this type
// and must produce identical spike streams.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "src/core/crossbar.hpp"
#include "src/core/neuron_model.hpp"
#include "src/core/types.hpp"

namespace nsc::core {

/// Configuration of a single neurosynaptic core.
struct CoreSpec {
  Crossbar crossbar;
  std::array<std::uint8_t, kCoreSize> axon_type{};  ///< G_i in [0, kAxonTypes).
  std::array<NeuronParams, kCoreSize> neuron{};
  std::uint8_t disabled = 0;  ///< Faulted cores are disabled and routed around.

  /// Mean active synapses per axon row (fan-out density).
  [[nodiscard]] double mean_row_synapses() const;
};

/// A complete network: the unit of deployment for both expressions.
struct Network {
  Geometry geom;
  std::uint64_t seed = 1;  ///< Keys all stochastic neuron draws.
  std::vector<CoreSpec> cores;

  Network() = default;
  explicit Network(const Geometry& g, std::uint64_t prng_seed = 1)
      : geom(g), seed(prng_seed), cores(static_cast<std::size_t>(g.total_cores())) {}

  [[nodiscard]] CoreSpec& core(CoreId c) { return cores[static_cast<std::size_t>(c)]; }
  [[nodiscard]] const CoreSpec& core(CoreId c) const { return cores[static_cast<std::size_t>(c)]; }

  /// Total active synapses across all cores.
  [[nodiscard]] std::uint64_t total_synapses() const;

  /// Neurons with enabled flag set.
  [[nodiscard]] std::uint64_t enabled_neurons() const;

  /// Cores with at least one enabled neuron or any active synapse.
  [[nodiscard]] int used_cores() const;
};

/// Aggregate runtime counters shared by all simulator backends.
///
/// `sops` counts synaptic operations exactly as the paper defines them: one
/// conditional weighted-accumulate per (active axon, active synapse) pair.
/// `axon_events` counts spike deliveries into cores (one crossbar row read
/// each); `sum_max_core_*` accumulate per-tick maxima over cores, which feed
/// the TrueNorth critical-path timing model.
struct KernelStats {
  std::uint64_t ticks = 0;
  std::uint64_t spikes = 0;            ///< Neuron firings.
  std::uint64_t sops = 0;              ///< Synaptic operations (paper's SOPS numerator).
  std::uint64_t axon_events = 0;       ///< Spike deliveries (crossbar row activations).
  std::uint64_t neuron_updates = 0;    ///< Leak+threshold evaluations.
  std::uint64_t hop_sum = 0;           ///< Total mesh hops traversed (tn backend).
  std::uint64_t interchip_crossings = 0;  ///< Packets serialized through merge-split.
  std::uint64_t dropped_spikes = 0;    ///< Spikes with no valid target (sinks).
  std::uint64_t sum_max_core_sops = 0;        ///< Σ_t max_core SOPs(core, t).
  std::uint64_t sum_max_core_axon_events = 0; ///< Σ_t max_core deliveries(core, t).
  std::uint64_t sum_max_core_spikes = 0;      ///< Σ_t max_core firings(core, t).

  void reset() { *this = KernelStats{}; }

  /// Mean firing rate in Hz assuming the nominal 1 kHz tick (1 ms/tick).
  [[nodiscard]] double mean_rate_hz(std::uint64_t neurons) const {
    if (ticks == 0 || neurons == 0) return 0.0;
    return 1000.0 * static_cast<double>(spikes) /
           (static_cast<double>(ticks) * static_cast<double>(neurons));
  }

  /// Mean active synapses traversed per spike (SOP / spike deliveries).
  [[nodiscard]] double mean_synapses_per_delivery() const {
    return axon_events ? static_cast<double>(sops) / static_cast<double>(axon_events) : 0.0;
  }
};

/// Receives output spikes from a simulator, in canonical order: ticks
/// ascending; within a tick, (core, neuron) ascending. Both expressions
/// guarantee this order, making streams directly comparable.
class SpikeSink {
 public:
  virtual ~SpikeSink() = default;
  virtual void on_spike(Tick tick, CoreId core, std::uint16_t neuron) = 0;
  /// Batched delivery of `n` already-canonically-ordered spikes — one
  /// virtual dispatch per commit instead of one per spike (the commit phase
  /// is on the dense-end critical path, docs/PERFORMANCE.md §kernels). The
  /// default forwards to on_spike one record at a time, so the stream a sink
  /// observes is identical either way; bulk sinks override it.
  virtual void on_spike_batch(const Spike* spikes, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      on_spike(spikes[i].tick, spikes[i].core, spikes[i].neuron);
    }
  }
  /// Called once per simulated tick after all of that tick's spikes.
  virtual void on_tick_end(Tick /*tick*/) {}
};

/// Abstract simulator: the kernel contract both expressions implement.
class Simulator {
 public:
  virtual ~Simulator() = default;

  /// Runs `nticks` steps. `inputs` (nullable) supplies external spikes;
  /// `sink` (nullable) receives output spikes in canonical order.
  virtual void run(Tick nticks, const class InputSchedule* inputs, SpikeSink* sink) = 0;

  [[nodiscard]] virtual Tick now() const = 0;
  [[nodiscard]] virtual const KernelStats& stats() const = 0;
  virtual void reset_stats() = 0;

  // --- Resilience (docs/RESILIENCE.md). Defaults: checkpointing throws
  // "unsupported", fault injection reports false; the two kernel expressions
  // override all four. ---

  /// Serializes the simulator's full dynamic state so that a fresh simulator
  /// over the same network can load_checkpoint() and continue bit-exactly
  /// (spike-for-spike identical to an uninterrupted run).
  virtual void save_checkpoint(std::ostream& os) const;

  /// Restores state saved by save_checkpoint (either backend's). Throws
  /// std::runtime_error on malformed input or a geometry/seed mismatch with
  /// this simulator's network.
  virtual void load_checkpoint(std::istream& is);

  /// Fails core `c` from the next processed tick on: it produces nothing,
  /// absorbs nothing, its in-flight deliveries are dropped (and counted via
  /// the fault.* observability counters), and spikes aimed at it are dropped
  /// and counted from then on. Returns false when `c` is invalid, already
  /// dead, or the backend does not support mid-run faults. Must only be
  /// called between run() calls (tick boundaries).
  virtual bool fail_core(CoreId c);

  /// Fails the directed inter-chip merge–split link `dir` (0=E, 1=W, 2=N,
  /// 3=S) of chip `chip`. Spikes whose route can no longer reach its target
  /// are dropped and counted. Returns false when out of range, already dead,
  /// or unsupported. Must only be called between run() calls.
  virtual bool fail_link(int chip, int dir);

  /// Kills (`hang == false`) or wedges (`hang == true`) the process hosting
  /// shard `rank` of a distributed backend. Single-process backends have no
  /// ranks to lose and return false — which makes a rank-kill fault campaign
  /// a no-op on them, so the same campaign doubles as its own fault-free
  /// reference run. Must only be called between run() calls.
  virtual bool fail_rank(int rank, bool hang);
};

}  // namespace nsc::core
