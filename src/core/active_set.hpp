// Per-tick active-core worklists: the data structure that makes the tick
// loop event-driven (paper §III — work scales with spikes delivered, not
// with neurons instantiated).
//
// A core needs visiting at tick t only when (a) its delay-ring slot for t
// holds pending axon events, or (b) it is "restless": some enabled neuron
// can change state or fire with zero synaptic input. Both conditions are
// tracked as bitmaps over a contiguous core range — one event bitmap per
// delay slot (set on every delivery, idempotent) plus one restless bitmap —
// and the per-tick scan walks `work[slot] | restless` with ctz, which
// preserves ascending core order and therefore the canonical spike order.
//
// Why skipping is exact: see core::idle_quiescent (neuron_model.hpp) and
// docs/PERFORMANCE.md. Deliveries always land 1..15 ticks ahead on a
// 16-slot ring, so consuming the current slot's bits during the scan can
// never race with bits being produced for it.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/network.hpp"
#include "src/core/neuron_model.hpp"
#include "src/core/types.hpp"
#include "src/util/bitrow.hpp"
#include "src/util/bits.hpp"

namespace nsc::core {

/// Event/restless bitmaps for the contiguous core range [begin, end).
/// Compass instantiates one per partition (partition boundaries are not
/// 64-aligned, so sharing words across threads would race); the TrueNorth
/// expression uses a single instance over the whole chip array.
class ActiveSet {
 public:
  ActiveSet() = default;

  ActiveSet(CoreId begin, CoreId end, int slots)
      : begin_(begin),
        words_((static_cast<std::size_t>(end - begin) + 63) / 64),
        slots_(slots),
        work_(static_cast<std::size_t>(slots) * words_, 0),
        restless_(words_, 0) {}

  /// Records a pending axon event for core `c` in delay slot `slot`.
  /// Idempotent, so every delivery may mark without deduplication.
  void mark_event(CoreId c, int slot) noexcept {
    work_[static_cast<std::size_t>(slot) * words_ + word_of(c)] |= bit_of(c);
  }

  /// Sets or clears the restless bit (idle dynamics can change core state).
  void set_restless(CoreId c, bool on) noexcept {
    if (on) {
      restless_[word_of(c)] |= bit_of(c);
    } else {
      restless_[word_of(c)] &= ~bit_of(c);
    }
  }

  /// Forgets core `c` entirely (fail_core): no slot or restless bit survives.
  void clear_core(CoreId c) noexcept {
    for (int s = 0; s < slots_; ++s) {
      work_[static_cast<std::size_t>(s) * words_ + word_of(c)] &= ~bit_of(c);
    }
    restless_[word_of(c)] &= ~bit_of(c);
  }

  /// Visits every core with a pending event in `slot` or a set restless bit,
  /// in ascending core order, consuming the slot's event bits. `fn` may
  /// update the current core's restless bit and may mark events for *other*
  /// slots (delays are >= 1, so the scanned slot is never a delivery target).
  template <typename Fn>
  void for_each_active(int slot, Fn&& fn) {
    std::uint64_t* w = work_.data() + static_cast<std::size_t>(slot) * words_;
    for (std::size_t i = 0; i < words_; ++i) {
      std::uint64_t m = w[i] | restless_[i];
      w[i] = 0;
      while (m != 0) {
        fn(begin_ + static_cast<CoreId>(i * 64) + static_cast<CoreId>(util::lowest_set(m)));
        m = util::clear_lowest(m);
      }
    }
  }

  /// Number of 64-core bitmap words covering [begin, end).
  [[nodiscard]] std::size_t word_count() const noexcept { return words_; }

  /// Word-granular variant of for_each_active for callers that merge several
  /// ActiveSets into one scan (the replica backend OR-combines the word from
  /// every replica before walking set bits once). Returns `work[slot] |
  /// restless` for bitmap word `i`, consuming the slot's event bits — the
  /// exact value the word-i iteration of for_each_active would walk. Bit b
  /// of the result is core `begin + i * 64 + b`. The same delivery-delay
  /// argument applies: fn-equivalent processing of the returned bits may
  /// mark events for other slots but never for the consumed one.
  [[nodiscard]] std::uint64_t take_word(int slot, std::size_t i) noexcept {
    std::uint64_t* w = work_.data() + static_cast<std::size_t>(slot) * words_ + i;
    const std::uint64_t m = *w | restless_[i];
    *w = 0;
    return m;
  }

 private:
  [[nodiscard]] std::size_t word_of(CoreId c) const noexcept {
    return static_cast<std::size_t>(c - begin_) >> 6;
  }
  [[nodiscard]] std::uint64_t bit_of(CoreId c) const noexcept {
    return std::uint64_t{1} << ((c - begin_) & 63U);
  }

  CoreId begin_ = 0;
  std::size_t words_ = 0;
  int slots_ = 0;
  std::vector<std::uint64_t> work_;     ///< slots_ × words_, slot-major.
  std::vector<std::uint64_t> restless_; ///< Cores with live idle dynamics.
};

/// True when some enabled neuron of `spec` has parameter-level idle dynamics
/// (core::has_idle_dynamics): the core goes on the worklist permanently and
/// its per-visit restless recomputation is skipped.
[[nodiscard]] inline bool core_always_active(const CoreSpec& spec,
                                             const util::BitRow256& enabled) {
  bool any = false;
  enabled.for_each_set([&](int j) { any = any || has_idle_dynamics(spec.neuron[j]); });
  return any;
}

/// True when some enabled neuron is not quiescent at its current potential
/// (`v` is the core-local potential array, kCoreSize entries). Used to seed
/// restless bits at construction and after load_checkpoint.
[[nodiscard]] inline bool core_restless_at(const CoreSpec& spec, const util::BitRow256& enabled,
                                           const std::int32_t* v) {
  bool any = false;
  enabled.for_each_set([&](int j) { any = any || !idle_quiescent(spec.neuron[j], v[j]); });
  return any;
}

}  // namespace nsc::core
