// Randomized test networks: the regression workload for the 1:1 equivalence
// methodology (paper §VI-A ran 413,333 single-core and 7,536 full-chip
// random regressions between Compass and the hardware design).
//
// Unlike the characterization networks, these exercise *every* programmable
// feature with adversarial randomness: all reset modes, stochastic synapse/
// leak/threshold modes, inhibitory weights, negative-threshold behaviors,
// the full delay range, disabled neurons, and spikes aimed at invalid
// targets (dropped).
#pragma once

#include "src/core/input_schedule.hpp"
#include "src/core/network.hpp"

namespace nsc::netgen {

struct RandomNetSpec {
  core::Geometry geom{1, 1, 4, 4};  ///< Small by default; tests scale up.
  std::uint64_t seed = 1;
  double synapse_density = 0.25;    ///< P(crossbar bit set).
  double input_drive_hz = 100.0;    ///< Used by make_poisson_inputs.
  bool stochastic_modes = true;     ///< Include PRNG-driven neuron features.
  double disabled_neuron_fraction = 0.05;
  double invalid_target_fraction = 0.02;  ///< Spikes to nowhere (dropped).
};

/// Builds a fully randomized network per `spec`.
[[nodiscard]] core::Network make_random(const RandomNetSpec& spec);

/// Poisson external input: each (core, axon) fires independently at
/// `spec.input_drive_hz` (1 kHz ticks) for `ticks` ticks.
[[nodiscard]] core::InputSchedule make_poisson_inputs(const RandomNetSpec& spec,
                                                      const core::Network& net, core::Tick ticks);

}  // namespace nsc::netgen
