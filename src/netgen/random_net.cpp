#include "src/netgen/random_net.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/util/prng.hpp"

namespace nsc::netgen {

using core::kCoreSize;

namespace {

void require_probability(const char* name, double p) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string("RandomNetSpec.") + name +
                                " must be a probability in [0, 1], got " + std::to_string(p));
  }
}

}  // namespace

core::Network make_random(const RandomNetSpec& spec) {
  // Out-of-range probabilities used to saturate silently (density 1.5 built
  // a full crossbar with no indication); they are hard errors now, and
  // nsc_netgen clamps with an explicit warn before calling in.
  require_probability("synapse_density", spec.synapse_density);
  require_probability("disabled_neuron_fraction", spec.disabled_neuron_fraction);
  require_probability("invalid_target_fraction", spec.invalid_target_fraction);
  core::Network net(spec.geom, spec.seed);
  util::Xoshiro rng(spec.seed * 0xA24BAED4963EE407ULL + 11);
  const auto ncores = static_cast<core::CoreId>(spec.geom.total_cores());

  for (core::CoreId c = 0; c < ncores; ++c) {
    core::CoreSpec& cs = net.core(c);
    for (int i = 0; i < kCoreSize; ++i) {
      cs.axon_type[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(rng.next_below(core::kAxonTypes));
      for (int j = 0; j < kCoreSize; ++j) {
        if (rng.next_double() < spec.synapse_density) cs.crossbar.set(i, j);
      }
    }
    for (int j = 0; j < kCoreSize; ++j) {
      core::NeuronParams& p = cs.neuron[j];
      // Signed 9-bit weights, mixed excitatory/inhibitory with an
      // excitatory bias so the network actually fires.
      for (int g = 0; g < core::kAxonTypes; ++g) {
        p.weight[g] = static_cast<std::int16_t>(rng.next_below(24)) - 8;
      }
      p.leak = static_cast<std::int16_t>(rng.next_below(7)) - 3;
      p.threshold = 1 + static_cast<std::int32_t>(rng.next_below(96));
      p.neg_threshold = static_cast<std::int32_t>(rng.next_below(64));
      p.reset_v = static_cast<std::int32_t>(rng.next_below(8));
      p.init_v = static_cast<std::int32_t>(rng.next_below(
          static_cast<std::uint64_t>(p.threshold)));
      p.reset_mode = static_cast<core::ResetMode>(rng.next_below(3));
      p.negative_mode = static_cast<core::NegativeMode>(rng.next_below(2));
      if (spec.stochastic_modes) {
        p.stochastic_weight = static_cast<std::uint8_t>(rng.next_below(16));
        p.stochastic_leak = rng.next_double() < 0.25 ? 1 : 0;
        p.leak_reversal = rng.next_double() < 0.15 ? 1 : 0;
        if (rng.next_double() < 0.25) {
          p.threshold_mask = (1u << rng.next_below(5)) - 1u;
        }
      }
      p.enabled = rng.next_double() < spec.disabled_neuron_fraction ? 0 : 1;
      if (rng.next_double() < spec.invalid_target_fraction) {
        p.target = core::AxonTarget{};  // invalid: spike is dropped
      } else {
        p.target.core = static_cast<core::CoreId>(rng.next_below(ncores));
        p.target.axon = static_cast<std::uint16_t>(rng.next_below(kCoreSize));
        p.target.delay =
            static_cast<std::uint8_t>(core::kMinDelay + rng.next_below(core::kMaxDelay));
      }
    }
  }
  return net;
}

core::InputSchedule make_poisson_inputs(const RandomNetSpec& spec, const core::Network& net,
                                        core::Tick ticks) {
  core::InputSchedule in;
  util::Xoshiro rng(spec.seed ^ 0x5851F42D4C957F2DULL);
  const double p = spec.input_drive_hz / 1000.0;
  const auto ncores = static_cast<core::CoreId>(net.geom.total_cores());
  for (core::Tick t = 0; t < ticks; ++t) {
    for (core::CoreId c = 0; c < ncores; ++c) {
      for (int a = 0; a < kCoreSize; ++a) {
        if (rng.next_double() < p) in.add(t, c, static_cast<std::uint16_t>(a));
      }
    }
  }
  in.finalize();
  return in;
}

}  // namespace nsc::netgen
