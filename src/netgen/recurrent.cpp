#include "src/netgen/recurrent.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "src/util/prng.hpp"

namespace nsc::netgen {

using core::kCoreSize;

RateCalibration calibrate(const RecurrentSpec& spec) {
  // Hard spec validation (was a debug-only assert: release builds would run
  // off the end of the sampling pool on synapses_per_axon > 256).
  if (!(spec.rate_hz > 0.0)) {
    throw std::invalid_argument("RecurrentSpec.rate_hz must be > 0, got " +
                                std::to_string(spec.rate_hz));
  }
  if (spec.synapses_per_axon < 0 || spec.synapses_per_axon > kCoreSize) {
    throw std::invalid_argument("RecurrentSpec.synapses_per_axon must be in [0, " +
                                std::to_string(kCoreSize) + "], got " +
                                std::to_string(spec.synapses_per_axon));
  }
  const int k = spec.synapses_per_axon;
  // Branching ratio K/α ≤ 0.8  ⇒  Δ ≥ K/4.
  const int delta_min = std::max(1, (k + 3) / 4);
  // α = K + Δ must stay inside the hardware's 18-bit threshold register, so
  // Δ is capped; sub-Hz targets calibrate to the closest reachable rate and
  // nsc_netgen reports the deviation (nothing is silently clamped).
  const std::int32_t delta_max = core::kThresholdMax - k;
  // Small integer search over (λ, Δ): the fixed point 1000·λ/Δ must land on
  // the target rate despite Δ's bounded range and λ's 9-bit range.
  std::int16_t leak = 1;
  std::int32_t delta = delta_min;
  double best_err = 1e30;
  for (int l = 1; l <= 255; ++l) {
    const auto d = static_cast<std::int32_t>(std::clamp<long>(
        std::lround(1000.0 * l / spec.rate_hz), delta_min, delta_max));
    const double err = std::abs(1000.0 * l / d - spec.rate_hz);
    if (err < best_err) {
      best_err = err;
      leak = static_cast<std::int16_t>(l);
      delta = d;
    }
    if (best_err < 0.002 * spec.rate_hz) break;
  }

  std::uint32_t mask = 0;
  if (spec.threshold_jitter) {
    // Largest 2^m − 1 not exceeding Δ/2: jitter decorrelates phases without
    // moving the operating point once compensated below.
    while ((mask << 1 | 1u) <= static_cast<std::uint32_t>(delta) / 2) mask = mask << 1 | 1u;
  }
  const std::int32_t alpha = k + delta - static_cast<std::int32_t>(mask / 2);
  return RateCalibration{alpha, delta, leak, mask, 1000.0 * leak / delta};
}

core::Network make_recurrent(const RecurrentSpec& spec) {
  const RateCalibration cal = calibrate(spec);
  core::Network net(spec.geom, spec.seed);
  util::Xoshiro rng(spec.seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);

  const auto ncores = static_cast<core::CoreId>(spec.geom.total_cores());
  // Reusable Fisher–Yates pool: sample_distinct would allocate per row, and
  // a full chip has a million rows.
  int pool[kCoreSize];
  for (int i = 0; i < kCoreSize; ++i) pool[i] = i;
  for (core::CoreId c = 0; c < ncores; ++c) {
    core::CoreSpec& cs = net.core(c);
    for (int i = 0; i < kCoreSize; ++i) {
      cs.axon_type[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i % core::kAxonTypes);
      for (int t = 0; t < spec.synapses_per_axon; ++t) {
        const int j =
            t + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(kCoreSize - t)));
        std::swap(pool[t], pool[j]);
        cs.crossbar.set(i, pool[t]);
      }
    }
    for (int j = 0; j < kCoreSize; ++j) {
      core::NeuronParams& p = cs.neuron[j];
      for (int g = 0; g < core::kAxonTypes; ++g) p.weight[g] = 1;
      p.leak = cal.leak;
      p.threshold = cal.threshold;
      p.threshold_mask = cal.jitter_mask;
      // Linear reset carries threshold overshoot into the next inter-spike
      // interval, making the renewal rate equation exact: with absolute
      // reset the mean overshoot (≈ half the per-tick drive) inflates the
      // effective threshold and depresses high-rate networks by >20%.
      p.reset_mode = core::ResetMode::kLinear;
      p.reset_v = 0;
      p.neg_threshold = 0;
      p.negative_mode = core::NegativeMode::kSaturate;
      // Phase-distributed start: the network is at its equilibrium the
      // moment the first tick runs, so short measurement windows are valid.
      p.init_v = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(std::max(1, cal.threshold))));
      p.target.core = static_cast<core::CoreId>(rng.next_below(ncores));
      p.target.axon = static_cast<std::uint16_t>(rng.next_below(kCoreSize));
      p.target.delay = core::kMinDelay;
      p.enabled = 1;
    }
  }
  return net;
}

std::vector<double> grid_rates() { return {2, 5, 10, 20, 50, 100, 150, 200}; }

std::vector<int> grid_synapses() {
  return {0, 26, 51, 77, 102, 128, 154, 179, 205, 230, 256};
}

std::vector<GridPoint> characterization_grid() {
  std::vector<GridPoint> grid;
  grid.reserve(88);
  for (double r : grid_rates()) {
    for (int s : grid_synapses()) grid.push_back({r, s});
  }
  return grid;
}

}  // namespace nsc::netgen
