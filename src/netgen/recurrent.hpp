// The paper's characterization workload: probabilistically generated
// recurrent networks spanning mean firing rates 0–200 Hz and active synapses
// per neuron 0–256 (paper §IV-B: 88 networks, all 4,096 cores, every neuron;
// targets uniformly distributed, averaging 21.66 hops in each dimension —
// which is exactly the mean |Δ| of two uniform draws on a 64-wide grid, so
// uniform targeting reproduces the paper's hop statistics).
//
// Rate calibration (how a generated network holds its target rate):
// every neuron is excitatory with weight 1, fires at threshold α = K + Δ
// (K = active synapses per axon row), carries a positive leak λ, and uses
// linear reset (V -= α, conserving overshoot so the renewal rate equation
// is exact). At equilibrium the rate satisfies r = 1000·(λ + K·r/1000)/α, i.e.
// r* = 1000·λ/Δ, with branching ratio K/α ≤ 0.8 — subcritical, so the
// dynamics are self-stabilizing rather than critical. λ and Δ are chosen so
// r* ≈ the requested rate; `expected_rate_hz` reports the exact integer
// fixed point. Initial potentials are drawn uniformly in [0, α) to start at
// equilibrium phase distribution (no burn-in), and a stochastic threshold
// jitter (PRNG-masked, compensated in α) decorrelates neurons — making the
// network the "sensitive assay" the paper uses: one missed synaptic
// operation changes a potential, shifts a spike, and chaotically diverges.
#pragma once

#include <vector>

#include "src/core/network.hpp"

namespace nsc::netgen {

/// Parameters of one characterization network.
struct RecurrentSpec {
  core::Geometry geom = core::truenorth_chip();
  double rate_hz = 20.0;       ///< Target mean firing rate per neuron.
  int synapses_per_axon = 128; ///< Active synapses on every crossbar row (K).
  std::uint64_t seed = 1;
  bool threshold_jitter = true;  ///< Stochastic threshold decorrelation.
};

/// Integer calibration derived from a RecurrentSpec.
struct RateCalibration {
  std::int32_t threshold;    ///< α (before jitter compensation).
  std::int32_t delta;        ///< Δ = α − K.
  std::int16_t leak;         ///< λ.
  std::uint32_t jitter_mask; ///< Threshold PRNG mask (0 if jitter disabled).
  double expected_rate_hz;   ///< Fixed point 1000·λ/Δ of the integer params.
};

/// Computes the integer neuron parameters that realize `spec`'s target rate.
[[nodiscard]] RateCalibration calibrate(const RecurrentSpec& spec);

/// Builds the recurrent network: K set synapses on every axon row, one
/// uniformly random (core, axon) target per neuron, delay 1.
[[nodiscard]] core::Network make_recurrent(const RecurrentSpec& spec);

/// One point of the paper's 88-network characterization sweep.
struct GridPoint {
  double rate_hz;
  int synapses;
};

/// The 8 × 11 = 88 (rate, synapse) grid of paper Fig. 5 / §IV-B.
[[nodiscard]] std::vector<GridPoint> characterization_grid();

/// The distinct rate values of the grid (ascending).
[[nodiscard]] std::vector<double> grid_rates();

/// The distinct synapse counts of the grid (ascending).
[[nodiscard]] std::vector<int> grid_synapses();

}  // namespace nsc::netgen
