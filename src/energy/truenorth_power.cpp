#include "src/energy/truenorth_power.hpp"

namespace nsc::energy {

double TrueNorthPowerModel::active_energy_j(const core::KernelStats& s, double volts) const {
  const double e = static_cast<double>(s.sops) * p_.e_sop +
                   static_cast<double>(s.axon_events) * p_.e_axon_event +
                   static_cast<double>(s.neuron_updates) * p_.e_neuron_update +
                   static_cast<double>(s.spikes) * p_.e_spike +
                   static_cast<double>(s.hop_sum) * p_.e_hop +
                   static_cast<double>(s.interchip_crossings) * p_.e_chip_crossing;
  return e * p_.active_scale(volts);
}

double TrueNorthPowerModel::passive_power_w(int total_cores, double volts) const {
  return static_cast<double>(total_cores) * p_.passive_w_per_core * p_.passive_scale(volts);
}

double TrueNorthPowerModel::total_energy_j(const core::KernelStats& s, int total_cores,
                                           double volts, double tick_hz) const {
  const double wall_seconds = static_cast<double>(s.ticks) / tick_hz;
  return active_energy_j(s, volts) + passive_power_w(total_cores, volts) * wall_seconds;
}

double TrueNorthPowerModel::mean_power_w(const core::KernelStats& s, int total_cores, double volts,
                                         double tick_hz) const {
  if (s.ticks == 0) return passive_power_w(total_cores, volts);
  const double wall_seconds = static_cast<double>(s.ticks) / tick_hz;
  return total_energy_j(s, total_cores, volts, tick_hz) / wall_seconds;
}

double TrueNorthPowerModel::sops_per_second(const core::KernelStats& s, double tick_hz) {
  if (s.ticks == 0) return 0.0;
  return static_cast<double>(s.sops) / static_cast<double>(s.ticks) * tick_hz;
}

double TrueNorthPowerModel::sops_per_watt(const core::KernelStats& s, int total_cores,
                                          double volts, double tick_hz) const {
  const double p = mean_power_w(s, total_cores, volts, tick_hz);
  return p > 0.0 ? sops_per_second(s, tick_hz) / p : 0.0;
}

EnergyBreakdown TrueNorthPowerModel::breakdown(const core::KernelStats& s, int total_cores,
                                               double volts, double tick_hz) const {
  const double a = p_.active_scale(volts);
  EnergyBreakdown b;
  b.sop_j = static_cast<double>(s.sops) * p_.e_sop * a;
  b.axon_j = static_cast<double>(s.axon_events) * p_.e_axon_event * a;
  b.neuron_j = static_cast<double>(s.neuron_updates) * p_.e_neuron_update * a;
  b.spike_j = static_cast<double>(s.spikes) * p_.e_spike * a;
  b.hop_j = static_cast<double>(s.hop_sum) * p_.e_hop * a;
  b.crossing_j = static_cast<double>(s.interchip_crossings) * p_.e_chip_crossing * a;
  b.passive_j =
      passive_power_w(total_cores, volts) * static_cast<double>(s.ticks) / tick_hz;
  return b;
}

}  // namespace nsc::energy
