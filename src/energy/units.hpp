// Physical units used throughout the energy/timing models. All internal
// computation is in SI (joules, watts, seconds, hertz); these constants make
// the calibration tables readable.
#pragma once

namespace nsc::energy {

inline constexpr double kPico = 1e-12;
inline constexpr double kNano = 1e-9;
inline constexpr double kMicro = 1e-6;
inline constexpr double kMilli = 1e-3;
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;

/// Nominal biological-real-time tick: 1 ms (1 kHz update, paper §III-A).
inline constexpr double kRealTimeTickSeconds = 1e-3;
inline constexpr double kRealTimeTickHz = 1000.0;

}  // namespace nsc::energy
