// Environmental telemetry log, EMON-style (paper §V-2: Blue Gene systems
// periodically log time-stamped power samples from each component into a
// DB2 database; measurements are recovered by querying and averaging the
// log). This module reproduces that measurement chain: a TelemetryLog
// collects time-stamped samples per named channel, and queries compute
// windowed averages/energy the way the paper derives compute-card power
// from node-card records.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nsc::energy {

struct TelemetrySample {
  double time_s;
  double value;
};

class TelemetryLog {
 public:
  /// Appends a sample to `channel` (timestamps must be non-decreasing per
  /// channel; out-of-order samples are rejected with std::invalid_argument).
  void record(const std::string& channel, double time_s, double value);

  [[nodiscard]] bool has_channel(const std::string& channel) const;
  [[nodiscard]] std::size_t sample_count(const std::string& channel) const;
  [[nodiscard]] std::vector<std::string> channels() const;

  /// Time-weighted average of `channel` over [t0, t1] (samples hold until
  /// the next sample; the value before the first sample is taken as the
  /// first sample's). Returns 0 for unknown channels or empty windows.
  [[nodiscard]] double mean_over(const std::string& channel, double t0, double t1) const;

  /// Integral of the channel over [t0, t1] — power channel → joules.
  [[nodiscard]] double integral_over(const std::string& channel, double t0, double t1) const;

  /// The paper's node-card → compute-card estimate: mean of `channel`
  /// divided by `parts` (EMON reports the 32-card node card; per-card power
  /// is the mean divided by 32).
  [[nodiscard]] double mean_per_part(const std::string& channel, double t0, double t1,
                                     int parts) const {
    return parts > 0 ? mean_over(channel, t0, t1) / parts : 0.0;
  }

 private:
  std::map<std::string, std::vector<TelemetrySample>> channels_;
};

}  // namespace nsc::energy
