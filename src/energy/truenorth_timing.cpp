#include "src/energy/truenorth_timing.hpp"

#include "src/core/types.hpp"

namespace nsc::energy {

double TrueNorthTimingModel::tick_time_s(const core::KernelStats& s, double volts) const {
  const double ticks = s.ticks ? static_cast<double>(s.ticks) : 1.0;
  const double a_hat = static_cast<double>(s.sum_max_core_axon_events) / ticks;
  const double sop_hat = static_cast<double>(s.sum_max_core_sops) / ticks;
  const double spike_hat = static_cast<double>(s.sum_max_core_spikes) / ticks;
  const double t = p_.t_fixed + a_hat * p_.t_row + sop_hat * p_.t_sop +
                   static_cast<double>(core::kCoreSize) * p_.t_neuron + spike_hat * p_.t_spike;
  return t / p_.speed(volts);
}

}  // namespace nsc::energy
