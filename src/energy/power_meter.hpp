// Emulated chip power instrumentation (paper §V-2).
//
// The paper samples TrueNorth core current at 65.2 kHz with an AD7689 ADC
// and smooths the per-time-step waveform with a level-triggered average over
// >500 time steps, validating against a bench supply within 3% RMS. We
// reproduce the measurement chain: a synthetic current waveform is built
// from the model's per-tick energy (an active pulse at the start of each
// tick riding on the passive baseline, plus sampling noise), digitized at
// the ADC rate and quantization, then reduced exactly the way the paper
// does. The test suite asserts the reconstructed RMS power stays within the
// paper's 3% calibration band of the analytic value.
#pragma once

#include <cstdint>
#include <vector>

namespace nsc::energy {

struct MeterParams {
  double sample_hz = 65200.0;     ///< AD7689 sampling rate used in the paper.
  double supply_volts = 0.75;     ///< Core supply (current = power / volts).
  double full_scale_amps = 4.0;   ///< ADC front-end range.
  int adc_bits = 16;              ///< AD7689 resolution.
  double noise_rms_amps = 2e-4;   ///< Front-end noise.
  double active_duty = 0.30;      ///< Fraction of the tick the active burst spans.
  std::uint64_t noise_seed = 7;
};

/// One reconstructed measurement.
struct MeterReading {
  double rms_power_w = 0.0;    ///< Level-triggered averaged RMS power.
  double mean_current_a = 0.0;
  std::size_t samples = 0;
  std::size_t ticks_averaged = 0;
};

class PowerMeter {
 public:
  explicit PowerMeter(MeterParams params = {}) : p_(params) {}

  /// Emulates measuring a workload that burns `active_energy_per_tick_j`
  /// per tick on top of `passive_power_w`, at tick frequency `tick_hz`,
  /// for `ticks` time steps (must exceed the paper's >500-step window).
  [[nodiscard]] MeterReading measure(double active_energy_per_tick_j, double passive_power_w,
                                     double tick_hz, int ticks) const;

  [[nodiscard]] const MeterParams& params() const noexcept { return p_; }

 private:
  MeterParams p_;
};

}  // namespace nsc::energy
