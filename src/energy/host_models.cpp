#include "src/energy/host_models.hpp"

#include <cassert>
#include <cmath>

namespace nsc::energy {

double work_units(const core::KernelStats& s) {
  return static_cast<double>(s.sops) + 0.6 * static_cast<double>(s.neuron_updates);
}

double work_units_per_tick(const core::KernelStats& s) {
  return s.ticks ? work_units(s) / static_cast<double>(s.ticks) : 0.0;
}

double X86Model::seconds_per_tick(const core::KernelStats& stats, int threads) const {
  assert(threads >= 1 && threads <= p_.max_threads());
  return work_units_per_tick(stats) * p_.t_work_unit / static_cast<double>(threads) +
         p_.t_tick_overhead;
}

double X86Model::power_w(int threads) const {
  assert(threads >= 1 && threads <= p_.max_threads());
  return p_.idle_package_w + static_cast<double>(threads) * p_.active_core_w + p_.dram_active_w;
}

double BgqModel::seconds_per_tick(const core::KernelStats& stats, int hosts,
                                  int threads_per_host) const {
  assert(hosts >= 1 && hosts <= p_.max_hosts);
  assert(threads_per_host >= 1 && threads_per_host <= p_.max_threads_per_host);
  const double workers = static_cast<double>(hosts) * static_cast<double>(threads_per_host);
  return work_units_per_tick(stats) * p_.t_work_unit / workers + p_.t_tick_overhead +
         p_.t_collective * std::log2(static_cast<double>(hosts));
}

double BgqModel::power_w(int hosts, int threads_per_host) const {
  assert(hosts >= 1 && hosts <= p_.max_hosts);
  return static_cast<double>(hosts) *
         (p_.card_idle_w + static_cast<double>(threads_per_host) * p_.thread_active_w);
}

}  // namespace nsc::energy
