// TrueNorth chip power/energy model (paper Fig. 5(d,e,f), §I, §VI-B).
//
// We cannot measure silicon, so power is reconstructed from the kernel
// counters the architectural simulator produces, through a component model:
//
//   P_total = P_passive(V) + f_tick · E_active_per_tick(V)
//   E_active_per_tick = sops·e_sop + axon_events·e_axon + updates·e_neuron
//                     + spikes·e_spike + hops·e_hop        (all per tick)
//
// Active energy scales as (V/V0)^2 (CV² switching); passive power scales as
// (V/V0)^3 (leakage current grows superlinearly with supply voltage) and is
// proportional to core count (every core leaks whether or not it computes).
//
// Calibration anchors (paper values at 0.75 V, real-time 1 kHz ticks, full
// 4,096-core chip):
//   * 20 Hz / 128 active synapses  →  ~65 mW total, ~46 GSOPS/W
//     (model: ~54 mW, ~47 GSOPS/W)
//   * same network run ~5× faster  →  ~81 GSOPS/W (model: ~2.4× gain; the
//     passive-amortization mechanism is reproduced, the exact factor is a
//     property of the silicon's passive/active split)
//   * 200 Hz / 256 synapses        →  >400 GSOPS/W (model: ~340 GSOPS/W)
//   * per-synaptic-event energy on the order of 10 pJ all-in (§I: "~10pJ
//     per synaptic event" including its share of delivery and overhead).
// EXPERIMENTS.md records model-vs-paper for every anchor.
#pragma once

#include "src/core/network.hpp"
#include "src/energy/units.hpp"

namespace nsc::energy {

struct TrueNorthPowerParams {
  double v_nominal = 0.75;   ///< Calibration voltage (paper Fig. 5 uses 0.75 V).
  double v_min = 0.67;       ///< Minimum voltage for correct operation (§VI-B).
  double v_max = 1.05;       ///< Maximum characterized voltage.

  /// Passive (leakage) power per core at v_nominal. 4,096 cores → 40 mW/chip.
  double passive_w_per_core = 0.040 / 4096.0;

  // Active energy per event at v_nominal:
  double e_sop = 1.0 * kPico;           ///< One conditional weighted-accumulate.
  double e_axon_event = 150.0 * kPico;  ///< Crossbar row read + axon decode.
  double e_neuron_update = 6.0 * kPico; ///< Leak + threshold + (stochastic draw).
  double e_spike = 50.0 * kPico;        ///< Spike generation + packet injection.
  double e_hop = 1.5 * kPico;           ///< One router traversal of one packet.
  double e_chip_crossing = 30.0 * kPico;///< Merge–split serialization + pad drive.

  [[nodiscard]] double active_scale(double volts) const {
    const double r = volts / v_nominal;
    return r * r;
  }
  [[nodiscard]] double passive_scale(double volts) const {
    const double r = volts / v_nominal;
    return r * r * r;
  }
};

/// Per-component energy attribution for a run (Fig. 5 ablation support:
/// which mechanism pays for what share of the chip's energy).
struct EnergyBreakdown {
  double sop_j = 0.0;        ///< Synaptic weighted-accumulates.
  double axon_j = 0.0;       ///< Crossbar row reads.
  double neuron_j = 0.0;     ///< Leak/threshold updates.
  double spike_j = 0.0;      ///< Spike generation/injection.
  double hop_j = 0.0;        ///< Mesh router traversals.
  double crossing_j = 0.0;   ///< Merge–split chip crossings.
  double passive_j = 0.0;    ///< Leakage over the wall-clock of the run.

  [[nodiscard]] double active() const {
    return sop_j + axon_j + neuron_j + spike_j + hop_j + crossing_j;
  }
  [[nodiscard]] double total() const { return active() + passive_j; }
};

/// Power/energy reconstruction from kernel counters.
class TrueNorthPowerModel {
 public:
  explicit TrueNorthPowerModel(TrueNorthPowerParams params = {}) : p_(params) {}

  [[nodiscard]] const TrueNorthPowerParams& params() const noexcept { return p_; }

  /// Active (switching) energy for all activity in `stats`, in joules.
  [[nodiscard]] double active_energy_j(const core::KernelStats& stats, double volts) const;

  /// Passive power of `total_cores` cores at `volts`, in watts.
  [[nodiscard]] double passive_power_w(int total_cores, double volts) const;

  /// Total energy for the run in `stats` executed at `tick_hz`, in joules.
  [[nodiscard]] double total_energy_j(const core::KernelStats& stats, int total_cores,
                                      double volts, double tick_hz) const;

  /// Mean total power over the run at `tick_hz`, in watts.
  [[nodiscard]] double mean_power_w(const core::KernelStats& stats, int total_cores, double volts,
                                    double tick_hz) const;

  /// Synaptic operations per second at `tick_hz` (the GSOPS numerator).
  [[nodiscard]] static double sops_per_second(const core::KernelStats& stats, double tick_hz);

  /// Computation per energy: SOPS / watt (paper's headline metric).
  [[nodiscard]] double sops_per_watt(const core::KernelStats& stats, int total_cores, double volts,
                                     double tick_hz) const;

  /// Component-wise energy attribution for the run.
  [[nodiscard]] EnergyBreakdown breakdown(const core::KernelStats& stats, int total_cores,
                                          double volts, double tick_hz) const;

 private:
  TrueNorthPowerParams p_;
};

}  // namespace nsc::energy
