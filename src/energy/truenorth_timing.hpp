// TrueNorth maximum tick frequency model (paper Fig. 5(b,c)).
//
// A tick completes when the busiest core has drained its axon events,
// integrated its synaptic events, updated all neurons, and emitted its
// spikes — plus a fixed synchronization/routing envelope. The asynchronous
// logic speeds up roughly linearly in the gate overdrive (V − Vt):
//
//   t_tick(V) = [t_fixed + Â·t_row + ŜOP·t_sop + 256·t_neuron + Ŝ·t_spike]
//               / speed(V),     speed(V) = (V − Vt)/(V0 − Vt)
//
// where Â, ŜOP, Ŝ are the mean per-tick *maxima over cores* of axon events,
// SOPs and spikes (critical path, from KernelStats.sum_max_core_*).
// Calibration (0.75 V): the absolute worst case — every axon active, every
// synapse set, every neuron firing every tick (65,536 SOPs/core/tick, the
// stress test of §VI-A) — lands slightly below 1 kHz real time; the
// 200 Hz/256-synapse corner sustains ≈1 kHz (paper: real-time); light loads
// run several kHz (paper: faster-than-real-time possible when "active
// synapses are few and firing rates are low").
#pragma once

#include "src/core/network.hpp"
#include "src/energy/units.hpp"

namespace nsc::energy {

struct TrueNorthTimingParams {
  double v_nominal = 0.75;
  double vt = 0.40;               ///< Effective threshold voltage of the process.
  double t_fixed = 60.0 * kMicro; ///< Per-tick sync + network drain envelope.
  double t_row = 300.0 * kNano;   ///< Axon event: crossbar row read + decode.
  double t_sop = 40.0 * kNano;    ///< One serialized synaptic integration.
  double t_neuron = 200.0 * kNano;///< One neuron's leak/threshold slot.
  double t_spike = 500.0 * kNano; ///< Spike generation + injection.

  [[nodiscard]] double speed(double volts) const {
    return (volts - vt) / (v_nominal - vt);
  }
};

class TrueNorthTimingModel {
 public:
  explicit TrueNorthTimingModel(TrueNorthTimingParams params = {}) : p_(params) {}

  [[nodiscard]] const TrueNorthTimingParams& params() const noexcept { return p_; }

  /// Mean per-tick critical-path time at `volts`, in seconds.
  [[nodiscard]] double tick_time_s(const core::KernelStats& stats, double volts) const;

  /// Maximum sustainable tick frequency at `volts`, in Hz.
  [[nodiscard]] double max_tick_hz(const core::KernelStats& stats, double volts) const {
    return 1.0 / tick_time_s(stats, volts);
  }

  /// True if the workload sustains biological real time (≥ 1 kHz ticks).
  [[nodiscard]] bool sustains_real_time(const core::KernelStats& stats, double volts) const {
    return max_tick_hz(stats, volts) >= kRealTimeTickHz;
  }

 private:
  TrueNorthTimingParams p_;
};

}  // namespace nsc::energy
