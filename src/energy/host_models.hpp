// Von Neumann comparison platforms: the x86 server and the Blue Gene/Q
// system the paper benchmarks Compass on (§V), reconstructed as analytic
// models because neither machine is available to this reproduction.
//
// Timing uses a work-unit abstraction: one tick of Compass costs
//   work_units = sops + 0.6 · neuron_updates
// (synaptic events dominate; the 0.6 weighs the fixed per-neuron leak/
// threshold pass, fit from the relative cost of the two inner loops).
// A platform is then (per-thread work-unit time, per-tick overhead, strong-
// scaling penalty) plus a power model.
//
// Calibration anchors from the paper:
//   * BG/Q, NeoVision (≈1.5M work-units/tick): 1 host × 64 threads
//     ≈ 0.13 s/tick; 32 hosts ≈ 12 ms/tick — "12× slower than real-time"
//     at the best operating point (paper Fig. 8, §VI-E).
//   * x86 (dual E5-2440, 12 cores): two-to-three orders of magnitude slower
//     than TrueNorth real time (paper Fig. 6(c)); implied per-thread rate
//     ≈ 2.5 M work-units/s.
//   * Power: EMON-style node-card telemetry for BG/Q (§V-2: node card /32
//     per compute card), RAPL-style package+DRAM for x86.
//
// The host this reproduction runs on also executes Compass for real; its
// *measured* wall clock is reported alongside these models (EXPERIMENTS.md
// discusses measured-vs-modeled).
#pragma once

#include "src/core/network.hpp"
#include "src/energy/units.hpp"

namespace nsc::energy {

/// Work units for one run (see file comment).
[[nodiscard]] double work_units(const core::KernelStats& stats);

/// Work units per tick.
[[nodiscard]] double work_units_per_tick(const core::KernelStats& stats);

/// Dual-socket x86 server model (2 × 6-core E5-2440, §V).
struct X86Params {
  int sockets = 2;
  int cores_per_socket = 6;
  double t_work_unit = 0.40 * kMicro;  ///< Per-thread work-unit time (Fig. 8 x86 series).
  double t_tick_overhead = 2.0 * kMilli;  ///< Per-tick sync/bookkeeping.
  double idle_package_w = 70.0;   ///< Both packages idle (uncore + fixed).
  double active_core_w = 8.5;     ///< Each busy core.
  double dram_active_w = 15.0;    ///< DRAM under simulation load.

  [[nodiscard]] int max_threads() const noexcept { return sockets * cores_per_socket; }
};

class X86Model {
 public:
  explicit X86Model(X86Params params = {}) : p_(params) {}

  [[nodiscard]] const X86Params& params() const noexcept { return p_; }

  /// Seconds per simulated tick with `threads` busy threads.
  [[nodiscard]] double seconds_per_tick(const core::KernelStats& stats, int threads) const;

  /// RAPL-style package+DRAM power with `threads` busy threads, in watts.
  [[nodiscard]] double power_w(int threads) const;

  /// Energy per simulated tick, joules.
  [[nodiscard]] double energy_per_tick_j(const core::KernelStats& stats, int threads) const {
    return seconds_per_tick(stats, threads) * power_w(threads);
  }

 private:
  X86Params p_;
};

/// Blue Gene/Q model: up to 32 compute cards, 16 app cores × 4 SMT threads
/// each (§V). Strong scaling follows T = W/(hosts·threads·rate) + overhead,
/// with a logarithmic collective term — the α–β shape of the two-step
/// synchronization scheme.
struct BgqParams {
  int max_hosts = 32;
  int max_threads_per_host = 64;
  double t_work_unit = 5.46 * kMicro;   ///< Per-thread work-unit time (A2 core).
  double t_tick_overhead = 5.0 * kMilli;///< Fixed per-tick cost (Compass loop).
  double t_collective = 0.6 * kMilli;   ///< Per log2(hosts) synchronization cost.
  double card_idle_w = 18.0;            ///< Compute card at idle (node card / 32).
  double thread_active_w = 0.18;        ///< Per busy hardware thread.
};

class BgqModel {
 public:
  explicit BgqModel(BgqParams params = {}) : p_(params) {}

  [[nodiscard]] const BgqParams& params() const noexcept { return p_; }

  /// Seconds per simulated tick on `hosts` cards × `threads` threads each.
  [[nodiscard]] double seconds_per_tick(const core::KernelStats& stats, int hosts,
                                        int threads_per_host) const;

  /// EMON-style power of `hosts` cards with `threads_per_host` busy, watts.
  [[nodiscard]] double power_w(int hosts, int threads_per_host) const;

  [[nodiscard]] double energy_per_tick_j(const core::KernelStats& stats, int hosts,
                                         int threads_per_host) const {
    return seconds_per_tick(stats, hosts, threads_per_host) * power_w(hosts, threads_per_host);
  }

 private:
  BgqParams p_;
};

}  // namespace nsc::energy
