#include "src/energy/scaling_model.hpp"

namespace nsc::energy {

std::vector<SystemTier> paper_system_tiers() {
  // Neuron/synapse counts: 1e6 and 256e6 per chip.
  auto tier = [](std::string name, int chips, double power_w) {
    return SystemTier{std::move(name), chips, power_w, 1e6 * chips, 256e6 * chips};
  };
  return {
      tier("single chip (real-time, typical app)", 1, 0.065),
      tier("8-board Ethernet rack node set", 8, 8 * 2.0),  // chip + Zynq per board
      tier("4x4 array board (measured 7.2 W)", 16, 7.2),
      tier("quarter-rack backplane (64 boards)", 1024, 1000.0),
      tier("full rack (4,096 chips)", 4096, 4000.0),
      tier("96-rack human-scale (100T synapses)", 4096 * 96, 4000.0 * 96),
  };
}

double energy_to_solution_ratio(const HistoricalRun& hist, const SystemTier& tier) {
  const double hist_energy = hist.racks * hist.rack_power_w * hist.slowdown;
  return hist_energy / tier.total_power_w;
}

HistoricalRun bgl_rat_scale() {
  // Ananthanarayanan & Modha, SC'07: 32 racks of Blue Gene/L, 10× slower
  // than real time. ~20 kW installed per BG/L rack.
  return {"rat-scale (32 racks BG/L, 10x slower than real time)", 32.0, 20000.0, 10.0};
}

HistoricalRun bgp_one_percent_human() {
  // Ananthanarayanan et al., SC'09: 16 racks of LLNL Dawn Blue Gene/P,
  // 400x slower than real time. ~40 kW installed per BG/P rack.
  return {"1%-human-scale (16 racks BG/P, 400x slower than real time)", 16.0, 40000.0, 400.0};
}

double truenorth_power_density_w_per_cm2(double chip_power_w) {
  constexpr double kChipAreaCm2 = 4.3;  // 5.4B transistors in 4.3 cm² (§III-C).
  return chip_power_w / kChipAreaCm2;
}

}  // namespace nsc::energy
