// Large-scale system projections (paper §VII): boards, backplanes, racks,
// and the energy-to-solution comparisons against the historical Blue Gene
// cortical simulations (rat-scale on BG/L, 1%-human-scale on BG/P).
#pragma once

#include <string>
#include <vector>

#include "src/energy/units.hpp"

namespace nsc::energy {

/// One level of the paper's system hierarchy (Fig. 1(h-j), §VII-D).
struct SystemTier {
  std::string name;
  int chips;                 ///< TrueNorth processors.
  double total_power_w;      ///< Budgeted total power (chips + support).
  double neurons;            ///< 1M per chip.
  double synapses;           ///< 256M per chip.
};

/// The tiers the paper describes: single chip, 16-chip board (measured
/// 7.2 W: 2.5 W array at 1.0 V + 4.7 W support, §VII-C), 64-board
/// quarter-rack backplane (1 kW budget), full rack with 4,096 chips (4 kW).
[[nodiscard]] std::vector<SystemTier> paper_system_tiers();

/// A historical supercomputer cortical simulation to compare against.
struct HistoricalRun {
  std::string name;        ///< e.g. "rat-scale, 32 racks BG/L".
  double racks;
  double rack_power_w;     ///< Installed power per rack.
  double slowdown;         ///< ×real-time (10× for BG/L rat, 400× for BG/P 1%-human).
};

/// Energy-to-solution ratio of `hist` versus a TrueNorth tier running the
/// same model in real time: (P_hist · slowdown) / P_tier. Both sides
/// simulate the same biological interval, so time-to-solution divides out
/// into the slowdown factor.
[[nodiscard]] double energy_to_solution_ratio(const HistoricalRun& hist, const SystemTier& tier);

/// The paper's two §VII-D comparisons with our installed-power assumptions
/// (BG/L ≈ 20 kW/rack, BG/P ≈ 40 kW/rack — see EXPERIMENTS.md for the
/// sensitivity of the 6,400× / 128,000× claims to these constants).
[[nodiscard]] HistoricalRun bgl_rat_scale();
[[nodiscard]] HistoricalRun bgp_one_percent_human();

/// Power density (W/cm²): the paper contrasts TrueNorth's ~20 mW/cm² against
/// ~100 W/cm² for a modern processor. Chip area is 4.3 cm².
[[nodiscard]] double truenorth_power_density_w_per_cm2(double chip_power_w);

}  // namespace nsc::energy
