#include "src/energy/telemetry.hpp"

#include <algorithm>
#include <stdexcept>

namespace nsc::energy {

void TelemetryLog::record(const std::string& channel, double time_s, double value) {
  auto& samples = channels_[channel];
  if (!samples.empty() && time_s < samples.back().time_s) {
    throw std::invalid_argument("telemetry: out-of-order sample on " + channel);
  }
  samples.push_back({time_s, value});
}

bool TelemetryLog::has_channel(const std::string& channel) const {
  return channels_.count(channel) != 0;
}

std::size_t TelemetryLog::sample_count(const std::string& channel) const {
  const auto it = channels_.find(channel);
  return it == channels_.end() ? 0 : it->second.size();
}

std::vector<std::string> TelemetryLog::channels() const {
  std::vector<std::string> out;
  out.reserve(channels_.size());
  for (const auto& [name, _] : channels_) out.push_back(name);
  return out;
}

double TelemetryLog::integral_over(const std::string& channel, double t0, double t1) const {
  const auto it = channels_.find(channel);
  if (it == channels_.end() || it->second.empty() || t1 <= t0) return 0.0;
  const auto& s = it->second;
  double acc = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    // Sample i holds over [s[i].time, s[i+1].time); the first sample also
    // covers any window time before it (zero-order hold extension).
    const double seg0 = i == 0 ? std::min(t0, s[0].time_s) : s[i].time_s;
    const double seg1 = i + 1 < s.size() ? s[i + 1].time_s : std::max(t1, s.back().time_s);
    const double lo = std::max(seg0, t0);
    const double hi = std::min(seg1, t1);
    if (hi > lo) acc += s[i].value * (hi - lo);
  }
  return acc;
}

double TelemetryLog::mean_over(const std::string& channel, double t0, double t1) const {
  if (t1 <= t0) return 0.0;
  return integral_over(channel, t0, t1) / (t1 - t0);
}

}  // namespace nsc::energy
