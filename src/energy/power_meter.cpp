#include "src/energy/power_meter.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/util/prng.hpp"

namespace nsc::energy {

MeterReading PowerMeter::measure(double active_energy_per_tick_j, double passive_power_w,
                                 double tick_hz, int ticks) const {
  assert(ticks > 0 && tick_hz > 0.0);
  MeterReading r;
  util::Xoshiro rng(p_.noise_seed);

  const double tick_s = 1.0 / tick_hz;
  const double burst_s = tick_s * p_.active_duty;
  // The active burst carries the whole per-tick active energy; the baseline
  // carries passive power. Currents at the core supply rail:
  const double i_passive = passive_power_w / p_.supply_volts;
  const double i_burst =
      i_passive + active_energy_per_tick_j / (burst_s * p_.supply_volts);

  const double dt = 1.0 / p_.sample_hz;
  const double lsb = p_.full_scale_amps / static_cast<double>(1 << p_.adc_bits);

  // Level-triggered averaging: samples are accumulated per phase-within-tick
  // (the trigger aligns the window to the tick boundary), then the averaged
  // waveform is reduced to RMS power. With deterministic phase alignment
  // this reduces to averaging all samples of like phase across ticks.
  double sum_i = 0.0, sum_i2 = 0.0;
  std::size_t n = 0;
  double t = 0.0;
  const double total_s = static_cast<double>(ticks) * tick_s;
  while (t < total_s) {
    const double phase = std::fmod(t, tick_s);
    const double ideal = phase < burst_s ? i_burst : i_passive;
    // Gaussian-ish noise from the sum of three uniforms (Irwin–Hall).
    const double u = rng.next_double() + rng.next_double() + rng.next_double() - 1.5;
    double sample = ideal + u * p_.noise_rms_amps * 2.0;
    // ADC quantization and clipping.
    sample = std::clamp(sample, 0.0, p_.full_scale_amps);
    sample = std::round(sample / lsb) * lsb;
    sum_i += sample;
    sum_i2 += sample * sample;
    ++n;
    t += dt;
  }

  r.samples = n;
  r.ticks_averaged = static_cast<std::size_t>(ticks);
  r.mean_current_a = n ? sum_i / static_cast<double>(n) : 0.0;
  // Mean power at a fixed supply rail is V·mean(I); RMS current is reported
  // for the calibration comparison the paper performs.
  r.rms_power_w = p_.supply_volts * r.mean_current_a;
  (void)sum_i2;
  return r;
}

}  // namespace nsc::energy
