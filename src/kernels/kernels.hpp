// Shared runtime-dispatched SIMD kernel layer for the dense inner loops of
// every backend (docs/PERFORMANCE.md §kernels).
//
// The two loops that dominate the dense end of the Fig. 5 sweep — the
// integrate+leak sweep over a core's 256 potentials and the dense-word
// synaptic accumulate — are provided in four semantically identical tiers:
//
//   scalar  plain per-lane int32 loops; the portable reference expression
//           every other tier must match lane for lane.
//   swar    the LUT/byte-array forms from src/core/neuron_hot.hpp (SWAR
//           mask expansion, auto-vectorizable streams) — the generic
//           x86-64 (SSE2) baseline the compiler can always emit.
//   sse     explicit SSE4.1 intrinsics (4 × int32 lanes).
//   avx2    explicit AVX2 intrinsics (8 × int32 lanes, fused bad-lane
//           mask extraction).
//
// The tier is resolved once per process via __builtin_cpu_supports and is
// overridable with NSC_FORCE_ISA=scalar|swar|sse|avx2 for testing (a forced
// tier the CPU cannot execute demotes to the best supported one at or below
// it, so the override can never fault). Integer arithmetic is identical
// lane-for-lane in every tier — add, 32-bit signed clamp, compare, no
// reassociation and no widening differences — so spike output, and
// therefore every golden trace hash, does not depend on the host ISA.
// tests/test_kernels.cpp pins this with a forced-ISA equivalence matrix
// across the tn/compass/replica backends plus per-kernel property tests
// against the int64 scalar oracle.
//
// This layer also owns the profile-guided per-core accumulate-strategy
// choice (sparse ctz walk vs per-word hybrid vs always-SIMD dense), driven
// by the measured row densities the backends already observe; see
// CoreProfile below and the kernel.dispatch_* counters in
// docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "src/util/bitrow.hpp"

namespace nsc::kernels {

/// Dispatch tiers, ordered by capability. Numeric values are stable: they
/// appear in the kernel.isa_* obs counters and NSC_FORCE_ISA diagnostics.
enum class Isa : int { kScalar = 0, kSwar = 1, kSse = 2, kAvx2 = 3 };

/// Stable lowercase tier name ("scalar", "swar", "sse", "avx2").
[[nodiscard]] const char* isa_name(Isa isa) noexcept;

/// Parses an NSC_FORCE_ISA-style tier name; nullopt on unknown spellings.
[[nodiscard]] std::optional<Isa> parse_isa(std::string_view name) noexcept;

/// Vectorizable kernel entry points, resolved once at startup.
struct Kernels {
  /// The fast-path integrate+leak sweep over one core's 256 potentials,
  /// fused with bad-lane extraction: folds `acc` (when non-null) and the
  /// leak row into all potentials with the hardware clamp after each add
  /// (exactly core::hot_neuron_sweep), and sets bit k of bad[k / 64] when
  /// neuron k needs the exact slow path this tick (possible fire or floor
  /// event). The vector compare produces the mask for free; consumers walk
  /// it with count-trailing-zeros.
  void (*sweep_badmask)(std::int32_t* vrow, const std::int32_t* acc, const std::int32_t* hot,
                        std::uint64_t bad[4]);

  /// Dense-word synaptic accumulate: adds `wrow[k]` into `acc[k]` for every
  /// set bit k of `bits` (exactly core::hot_accumulate_word). `acc`/`wrow`
  /// point at the word's base lane (a multiple of 64).
  void (*accumulate_word)(std::int32_t* acc, const std::int16_t* wrow, std::uint64_t bits);

  /// Whole-row accumulate for the kDense strategy: all four 64-lane words of
  /// one crossbar row in a single call, equivalent to accumulate_word on
  /// bits[w] at base w*64 for w = 0..3 (addition is per-lane, so the
  /// grouping cannot change any sum). One dispatch per *row* instead of per
  /// word — on dense rows the per-word indirect calls are pure overhead.
  void (*accumulate_row)(std::int32_t* acc, const std::int16_t* wrow,
                         const std::uint64_t bits[4]);

  /// Fused kDense synapse phase for one core visit: for each of the `n`
  /// active axons i = axons[k], adds the axon-type weight row
  /// (wt + types[i] * 256) into `acc` under the crossbar row mask xbar[i] —
  /// exactly accumulate_row per axon, so the fusion cannot change any sum.
  /// One dispatch per core *visit* instead of per row. `rowpop[i]` must be
  /// the popcount of xbar[i]; rows with all 256 bits set (the Fig. 5 dense
  /// corner) deliver the same weight to every lane, so the tiers may batch
  /// them per axon type and apply cnt_g * w_g[j] in one multiply-add pass —
  /// per lane that is the identical sum of identical addends (int32 wrap
  /// arithmetic is commutative, and the hot-core bounds keep it far from
  /// wrapping anyway). Callers guarantee every lane is enabled (hot-core
  /// contract), which is what makes the raw crossbar row the correct mask.
  void (*accumulate_core)(std::int32_t* acc, const std::int16_t* wt,
                          const util::BitRow256* xbar, const std::uint8_t* types,
                          const std::uint16_t* rowpop, const std::int16_t* axons, int n);

  /// The tier these entry points implement (after any demotion).
  Isa isa;
};

/// Best tier the executing CPU supports (CPU probe cached per process;
/// NSC_FORCE_ISA is not consulted).
[[nodiscard]] Isa best_supported_isa() noexcept;

/// The kernels of `isa`, demoted to the best supported tier at or below it
/// when the CPU lacks the instruction set. Direct tier access for tests;
/// backends use select_kernels().
[[nodiscard]] const Kernels& kernels_for(Isa isa) noexcept;

/// The tier this process dispatches to: the NSC_FORCE_ISA override when set
/// and parseable (demoted if unsupported), else the best supported tier.
/// The CPU probe runs once per process; the environment is consulted per
/// call so a test harness can re-force between simulator constructions —
/// backends resolve this once at construction, never per tick.
[[nodiscard]] const Kernels& select_kernels() noexcept;

// ---------------------------------------------------------------------------
// Profile-guided per-core accumulate strategy.
// ---------------------------------------------------------------------------

/// How a core's synapse phase treats each nonzero masked crossbar word.
/// Every strategy computes the identical accumulator (the kernels are exact
/// and addition is per-lane), so the choice is performance-only and cannot
/// perturb spike output, at any thread count and across checkpoints.
enum class Strategy : std::uint8_t {
  kSparse = 0,  ///< Always the O(popcount) ctz walk (rows measured sparse).
  kHybrid = 1,  ///< Per-word popcount branch at kDenseWordCut (the default).
  kDense = 2,   ///< Always the SIMD accumulate (rows measured dense).
};

/// Per-word popcount cutoffs the strategies translate to: a word runs the
/// SIMD accumulate when popcount >= cut. kSparse never does (cut 65),
/// kDense always does (masked words are nonzero, so popcount >= 1 >= cut).
[[nodiscard]] int strategy_cut(Strategy s) noexcept;

/// Running density profile of one core's crossbar-word stream. The backends
/// fold each visit's (masked words, set bits) in with update_profile; once
/// enough words accumulate the strategy is re-evaluated from the mean bits
/// per word and the window decays exponentially so the choice tracks drift.
/// Derived perf-only state: reset (to kHybrid) at construction and after
/// every checkpoint restore.
struct CoreProfile {
  std::uint32_t words = 0;
  std::uint32_t bits = 0;
  Strategy strategy = Strategy::kHybrid;
};

/// Words observed before the first (and between consecutive) strategy
/// re-evaluations, and the mean-bits-per-word boundaries: <= kSparseMeanCut
/// chooses kSparse, >= the dense-word cutoff (core::kDenseWordCut) chooses
/// kDense, anything between keeps the per-word hybrid.
inline constexpr std::uint32_t kProfileWindow = 512;
inline constexpr std::uint32_t kSparseMeanCut = 4;

void update_profile(CoreProfile& p, std::uint32_t words, std::uint32_t bits,
                    int dense_mean_cut) noexcept;

}  // namespace nsc::kernels
