// All four dispatch tiers live in this one translation unit — the single
// SIMD-intrinsics home the INV007 invariant linter allows — so every
// vector-width assumption sits next to the scalar expression it must match.
#include "src/kernels/kernels.hpp"

#include <cstdlib>
#include <cstring>

#include "src/core/neuron_hot.hpp"
#include "src/core/types.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define NSC_KERNELS_X86 1
#else
#define NSC_KERNELS_X86 0
#endif

namespace nsc::kernels {

namespace {

// ---------------------------------------------------------------------------
// scalar: the reference expression, one lane at a time. Every other tier is
// this arithmetic at a wider lane count; tests/test_kernels.cpp additionally
// checks it against an int64 oracle so "the reference is itself exact" is
// not circular.
// ---------------------------------------------------------------------------

std::int32_t clamp_potential(std::int32_t x) {
  x = x > core::kPotentialMax ? core::kPotentialMax : x;
  x = x < core::kPotentialMin ? core::kPotentialMin : x;
  return x;
}

void sweep_badmask_scalar(std::int32_t* vrow, const std::int32_t* acc, const std::int32_t* hot,
                          std::uint64_t bad[4]) {
  const std::int32_t* leak = hot;
  const std::int32_t* alpha = hot + core::kCoreSize;
  const std::int32_t* floor_le = hot + 2 * core::kCoreSize;
  for (int w = 0; w < 4; ++w) {
    std::uint64_t m = 0;
    for (int k = 0; k < 64; ++k) {
      const int j = w * 64 + k;
      std::int32_t x = vrow[j];
      if (acc != nullptr) {
        x = clamp_potential(x + acc[j]);
      }
      x = clamp_potential(x + leak[j]);
      vrow[j] = x;
      const bool is_bad = x >= alpha[j] || x <= floor_le[j];
      m |= static_cast<std::uint64_t>(is_bad) << static_cast<unsigned>(k);
    }
    bad[w] = m;
  }
}

void accumulate_word_scalar(std::int32_t* acc, const std::int16_t* wrow, std::uint64_t bits) {
  for (int k = 0; k < 64; ++k) {
    if (((bits >> static_cast<unsigned>(k)) & 1U) != 0) {
      acc[k] += wrow[k];
    }
  }
}

void accumulate_row_scalar(std::int32_t* acc, const std::int16_t* wrow,
                           const std::uint64_t bits[4]) {
  for (int w = 0; w < 4; ++w) {
    accumulate_word_scalar(acc + w * 64, wrow + w * 64, bits[w]);
  }
}

// Splits a core visit's axon list into fully-populated crossbar rows —
// batched as a per-axon-type count — and the remaining partial rows. A full
// row delivers wrow[j] to every lane, so cnt[g] * wt[g][j] reproduces the
// combined contribution of all full rows of type g exactly (a sum of
// identical int32 addends; the hot-core envelope keeps cnt * w far inside
// int32). Every tier consumes this split the same way, so per-lane sums stay
// tier-identical.
struct CoreSplit {
  std::int32_t cnt[core::kAxonTypes];
  std::int16_t rest[core::kCoreSize];
  int nrest;
  bool any_full;
};

inline CoreSplit split_full_rows(const std::uint8_t* types, const std::uint16_t* rowpop,
                                 const std::int16_t* axons, int n) {
  CoreSplit s;
  for (int g = 0; g < core::kAxonTypes; ++g) s.cnt[g] = 0;
  s.nrest = 0;
  for (int k = 0; k < n; ++k) {
    const int i = axons[k];
    if (rowpop[i] == core::kCoreSize) {
      ++s.cnt[types[i]];
    } else {
      s.rest[s.nrest++] = static_cast<std::int16_t>(i);
    }
  }
  s.any_full = (s.cnt[0] | s.cnt[1] | s.cnt[2] | s.cnt[3]) != 0;
  return s;
}

void accumulate_core_scalar(std::int32_t* acc, const std::int16_t* wt,
                            const util::BitRow256* xbar, const std::uint8_t* types,
                            const std::uint16_t* rowpop, const std::int16_t* axons, int n) {
  const CoreSplit s = split_full_rows(types, rowpop, axons, n);
  for (int g = 0; g < core::kAxonTypes; ++g) {
    if (s.cnt[g] == 0) continue;
    const std::int16_t* wrow = wt + static_cast<std::size_t>(g) * core::kCoreSize;
    for (int j = 0; j < core::kCoreSize; ++j) acc[j] += s.cnt[g] * wrow[j];
  }
  for (int k = 0; k < s.nrest; ++k) {
    const int i = s.rest[k];
    if (k + 2 < s.nrest) __builtin_prefetch(&xbar[s.rest[k + 2]]);
    const std::int16_t* wrow = wt + static_cast<std::size_t>(types[i]) * core::kCoreSize;
    for (int w = 0; w < 4; ++w) {
      const std::uint64_t bits = xbar[i].word(w);
      if (bits != 0) accumulate_word_scalar(acc + w * 64, wrow + w * 64, bits);
    }
  }
}

// ---------------------------------------------------------------------------
// swar: the branch-free byte-array/LUT forms from src/core/neuron_hot.hpp —
// plain C++ the auto-vectorizer turns into generic x86-64 (SSE2) code. The
// sweep writes bad bytes (each 0 or 1) which we pack into the bit-mask
// interface.
// ---------------------------------------------------------------------------

void sweep_badmask_swar(std::int32_t* vrow, const std::int32_t* acc, const std::int32_t* hot,
                        std::uint64_t bad[4]) {
  std::uint8_t bytes[core::kCoreSize];
  core::hot_neuron_sweep(vrow, acc, hot, bytes);
  for (int w = 0; w < 4; ++w) {
    std::uint64_t m = 0;
    for (int k = 0; k < 64; ++k) {
      m |= static_cast<std::uint64_t>(bytes[w * 64 + k]) << static_cast<unsigned>(k);
    }
    bad[w] = m;
  }
}

void accumulate_row_swar(std::int32_t* acc, const std::int16_t* wrow,
                         const std::uint64_t bits[4]) {
  for (int w = 0; w < 4; ++w) {
    core::hot_accumulate_word(acc + w * 64, wrow + w * 64, bits[w]);
  }
}

void accumulate_core_swar(std::int32_t* acc, const std::int16_t* wt,
                          const util::BitRow256* xbar, const std::uint8_t* types,
                          const std::uint16_t* rowpop, const std::int16_t* axons, int n) {
  const CoreSplit s = split_full_rows(types, rowpop, axons, n);
  for (int g = 0; g < core::kAxonTypes; ++g) {
    if (s.cnt[g] == 0) continue;
    const std::int16_t* wrow = wt + static_cast<std::size_t>(g) * core::kCoreSize;
    const std::int32_t c = s.cnt[g];
    for (int j = 0; j < core::kCoreSize; ++j) acc[j] += c * wrow[j];
  }
  for (int k = 0; k < s.nrest; ++k) {
    const int i = s.rest[k];
    if (k + 2 < s.nrest) __builtin_prefetch(&xbar[s.rest[k + 2]]);
    const std::int16_t* wrow = wt + static_cast<std::size_t>(types[i]) * core::kCoreSize;
    for (int w = 0; w < 4; ++w) {
      const std::uint64_t bits = xbar[i].word(w);
      if (bits != 0) core::hot_accumulate_word(acc + w * 64, wrow + w * 64, bits);
    }
  }
}

#if NSC_KERNELS_X86

// ---------------------------------------------------------------------------
// sse: explicit SSE4.1, 4 int32 lanes. Same int32 arithmetic as scalar lane
// for lane: add, clamp via 32-bit signed min/max (pminsd/pmaxsd are the
// SSE4.1 requirement), compare — no reassociation, no widening differences.
// ---------------------------------------------------------------------------

__attribute__((target("sse4.1"))) inline __m128i clamp_epi32_sse(__m128i x, __m128i lo,
                                                                 __m128i hi) {
  return _mm_max_epi32(_mm_min_epi32(x, hi), lo);
}

__attribute__((target("sse4.1"))) void sweep_badmask_sse(std::int32_t* vrow,
                                                         const std::int32_t* acc,
                                                         const std::int32_t* hot,
                                                         std::uint64_t bad[4]) {
  const std::int32_t* leak = hot;
  const std::int32_t* alpha = hot + core::kCoreSize;
  const std::int32_t* floor_le = hot + 2 * core::kCoreSize;
  const __m128i lo = _mm_set1_epi32(core::kPotentialMin);
  const __m128i hi = _mm_set1_epi32(core::kPotentialMax);
  for (int w = 0; w < 4; ++w) {
    std::uint64_t m = 0;
    for (int k = 0; k < 64; k += 4) {
      const int j = w * 64 + k;
      __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(vrow + j));
      if (acc != nullptr) {
        x = _mm_add_epi32(x, _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + j)));
        x = clamp_epi32_sse(x, lo, hi);
      }
      x = _mm_add_epi32(x, _mm_loadu_si128(reinterpret_cast<const __m128i*>(leak + j)));
      x = clamp_epi32_sse(x, lo, hi);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(vrow + j), x);
      // bad = (x >= alpha) | (x <= floor_le) == !((x < alpha) & (x > floor_le)).
      const __m128i below_alpha =
          _mm_cmpgt_epi32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(alpha + j)), x);
      const __m128i above_floor =
          _mm_cmpgt_epi32(x, _mm_loadu_si128(reinterpret_cast<const __m128i*>(floor_le + j)));
      const auto good = static_cast<std::uint32_t>(
          _mm_movemask_ps(_mm_castsi128_ps(_mm_and_si128(below_alpha, above_floor))));
      m |= static_cast<std::uint64_t>(~good & 0xFU) << static_cast<unsigned>(k);
    }
    bad[w] = m;
  }
}

__attribute__((target("sse4.1"))) void accumulate_word_sse(std::int32_t* acc,
                                                           const std::int16_t* wrow,
                                                           std::uint64_t bits) {
  for (int k = 0; k < 64; k += 8) {
    // One byte of `bits` expands to 8 int16 select masks via the same 4 KiB
    // LUT the swar kernel uses (one 16-byte row per byte value).
    const auto b = static_cast<unsigned>((bits >> static_cast<unsigned>(k)) & 0xFFU);
    const __m128i mask16 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(core::detail::kBitSpread.m[b]));
    const __m128i w16 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(wrow + k));
    const __m128i sel = _mm_and_si128(w16, mask16);
    const __m128i lo32 = _mm_cvtepi16_epi32(sel);
    const __m128i hi32 = _mm_cvtepi16_epi32(_mm_srli_si128(sel, 8));
    __m128i* accv = reinterpret_cast<__m128i*>(acc + k);
    _mm_storeu_si128(accv, _mm_add_epi32(_mm_loadu_si128(accv), lo32));
    __m128i* accv2 = reinterpret_cast<__m128i*>(acc + k + 4);
    _mm_storeu_si128(accv2, _mm_add_epi32(_mm_loadu_si128(accv2), hi32));
  }
}

__attribute__((target("sse4.1"))) void accumulate_row_sse(std::int32_t* acc,
                                                          const std::int16_t* wrow,
                                                          const std::uint64_t bits[4]) {
  for (int w = 0; w < 4; ++w) {
    accumulate_word_sse(acc + w * 64, wrow + w * 64, bits[w]);
  }
}

__attribute__((target("sse4.1"))) void accumulate_core_sse(std::int32_t* acc,
                                                           const std::int16_t* wt,
                                                           const util::BitRow256* xbar,
                                                           const std::uint8_t* types,
                                                           const std::uint16_t* rowpop,
                                                           const std::int16_t* axons, int n) {
  const CoreSplit s = split_full_rows(types, rowpop, axons, n);
  for (int g = 0; g < core::kAxonTypes; ++g) {
    if (s.cnt[g] == 0) continue;
    const std::int16_t* wrow = wt + static_cast<std::size_t>(g) * core::kCoreSize;
    const __m128i c = _mm_set1_epi32(s.cnt[g]);
    for (int j = 0; j < core::kCoreSize; j += 8) {
      const __m128i w16 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(wrow + j));
      const __m128i lo32 = _mm_mullo_epi32(_mm_cvtepi16_epi32(w16), c);
      const __m128i hi32 = _mm_mullo_epi32(_mm_cvtepi16_epi32(_mm_srli_si128(w16, 8)), c);
      __m128i* accv = reinterpret_cast<__m128i*>(acc + j);
      _mm_storeu_si128(accv, _mm_add_epi32(_mm_loadu_si128(accv), lo32));
      __m128i* accv2 = reinterpret_cast<__m128i*>(acc + j + 4);
      _mm_storeu_si128(accv2, _mm_add_epi32(_mm_loadu_si128(accv2), hi32));
    }
  }
  for (int k = 0; k < s.nrest; ++k) {
    const int i = s.rest[k];
    if (k + 2 < s.nrest) __builtin_prefetch(&xbar[s.rest[k + 2]]);
    const std::int16_t* wrow = wt + static_cast<std::size_t>(types[i]) * core::kCoreSize;
    for (int w = 0; w < 4; ++w) {
      const std::uint64_t bits = xbar[i].word(w);
      if (bits != 0) accumulate_word_sse(acc + w * 64, wrow + w * 64, bits);
    }
  }
}

// ---------------------------------------------------------------------------
// avx2: 8 int32 lanes, migrated verbatim from src/replica/kernels.cpp (PR 6).
// Same int32 arithmetic lane for lane, same LUT mask expansion.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i clamp_epi32_avx2(__m256i x, __m256i lo,
                                                                __m256i hi) {
  return _mm256_max_epi32(_mm256_min_epi32(x, hi), lo);
}

__attribute__((target("avx2"))) void sweep_badmask_avx2(std::int32_t* vrow,
                                                        const std::int32_t* acc,
                                                        const std::int32_t* hot,
                                                        std::uint64_t bad[4]) {
  const std::int32_t* leak = hot;
  const std::int32_t* alpha = hot + core::kCoreSize;
  const std::int32_t* floor_le = hot + 2 * core::kCoreSize;
  const __m256i lo = _mm256_set1_epi32(core::kPotentialMin);
  const __m256i hi = _mm256_set1_epi32(core::kPotentialMax);
  for (int w = 0; w < 4; ++w) {
    std::uint64_t m = 0;
    for (int k = 0; k < 64; k += 8) {
      const int j = w * 64 + k;
      __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vrow + j));
      if (acc != nullptr) {
        x = _mm256_add_epi32(x, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + j)));
        x = clamp_epi32_avx2(x, lo, hi);
      }
      x = _mm256_add_epi32(x, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(leak + j)));
      x = clamp_epi32_avx2(x, lo, hi);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(vrow + j), x);
      // bad = (x >= alpha) | (x <= floor_le) == !((x < alpha) & (x > floor_le)).
      const __m256i below_alpha =
          _mm256_cmpgt_epi32(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(alpha + j)), x);
      const __m256i above_floor =
          _mm256_cmpgt_epi32(x, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(floor_le + j)));
      const auto good = static_cast<std::uint32_t>(
          _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_and_si256(below_alpha, above_floor))));
      m |= static_cast<std::uint64_t>(~good & 0xFFU) << static_cast<unsigned>(k);
    }
    bad[w] = m;
  }
}

__attribute__((target("avx2"))) void accumulate_word_avx2(std::int32_t* acc,
                                                          const std::int16_t* wrow,
                                                          std::uint64_t bits) {
  for (int k = 0; k < 64; k += 16) {
    // Two bytes of `bits` expand to 16 int16 select masks via the same 4 KiB
    // LUT the swar kernel uses (one 16-byte row per byte value).
    const auto b0 = static_cast<unsigned>((bits >> static_cast<unsigned>(k)) & 0xFFU);
    const auto b1 = static_cast<unsigned>((bits >> static_cast<unsigned>(k + 8)) & 0xFFU);
    const __m128i m0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(core::detail::kBitSpread.m[b0]));
    const __m128i m1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(core::detail::kBitSpread.m[b1]));
    const __m256i mask16 = _mm256_set_m128i(m1, m0);
    const __m256i w16 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wrow + k));
    const __m256i sel = _mm256_and_si256(w16, mask16);
    const __m256i lo32 = _mm256_cvtepi16_epi32(_mm256_castsi256_si128(sel));
    const __m256i hi32 = _mm256_cvtepi16_epi32(_mm256_extracti128_si256(sel, 1));
    __m256i* accv = reinterpret_cast<__m256i*>(acc + k);
    _mm256_storeu_si256(accv, _mm256_add_epi32(_mm256_loadu_si256(accv), lo32));
    __m256i* accv2 = reinterpret_cast<__m256i*>(acc + k + 8);
    _mm256_storeu_si256(accv2, _mm256_add_epi32(_mm256_loadu_si256(accv2), hi32));
  }
}

__attribute__((target("avx2"))) void accumulate_row_avx2(std::int32_t* acc,
                                                         const std::int16_t* wrow,
                                                         const std::uint64_t bits[4]) {
  for (int w = 0; w < 4; ++w) {
    accumulate_word_avx2(acc + w * 64, wrow + w * 64, bits[w]);
  }
}

__attribute__((target("avx2"))) void accumulate_core_avx2(std::int32_t* acc,
                                                          const std::int16_t* wt,
                                                          const util::BitRow256* xbar,
                                                          const std::uint8_t* types,
                                                          const std::uint16_t* rowpop,
                                                          const std::int16_t* axons, int n) {
  const CoreSplit s = split_full_rows(types, rowpop, axons, n);
  if (s.any_full) {
    for (int g = 0; g < core::kAxonTypes; ++g) {
      if (s.cnt[g] == 0) continue;
      const std::int16_t* wrow = wt + static_cast<std::size_t>(g) * core::kCoreSize;
      const __m256i c = _mm256_set1_epi32(s.cnt[g]);
      for (int j = 0; j < core::kCoreSize; j += 16) {
        const __m256i w16 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wrow + j));
        const __m256i lo32 =
            _mm256_mullo_epi32(_mm256_cvtepi16_epi32(_mm256_castsi256_si128(w16)), c);
        const __m256i hi32 =
            _mm256_mullo_epi32(_mm256_cvtepi16_epi32(_mm256_extracti128_si256(w16, 1)), c);
        __m256i* accv = reinterpret_cast<__m256i*>(acc + j);
        _mm256_storeu_si256(accv, _mm256_add_epi32(_mm256_loadu_si256(accv), lo32));
        __m256i* accv2 = reinterpret_cast<__m256i*>(acc + j + 8);
        _mm256_storeu_si256(accv2, _mm256_add_epi32(_mm256_loadu_si256(accv2), hi32));
      }
    }
  }
  if (s.nrest == 0) return;
  // Word-outer schedule for the partial rows: one 64-lane accumulator block
  // stays in eight ymm registers across the whole axon list instead of
  // round-tripping through `acc` once per row. Each lane still receives the
  // same addends as the row-inner tiers (int32 addition is commutative), so
  // the sums are identical.
  for (int w = 0; w < 4; ++w) {
    std::int32_t* accw = acc + w * 64;
    __m256i a[8];
    for (int v = 0; v < 8; ++v) {
      a[v] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(accw + 8 * v));
    }
    for (int k = 0; k < s.nrest; ++k) {
      const int i = s.rest[k];
      if (w == 0 && k + 2 < s.nrest) __builtin_prefetch(&xbar[s.rest[k + 2]]);
      const std::uint64_t bits = xbar[i].word(w);
      if (bits == 0) continue;
      const std::int16_t* wrow =
          wt + static_cast<std::size_t>(types[i]) * core::kCoreSize + w * 64;
      for (int k16 = 0; k16 < 64; k16 += 16) {
        const auto b0 = static_cast<unsigned>((bits >> static_cast<unsigned>(k16)) & 0xFFU);
        const auto b1 = static_cast<unsigned>((bits >> static_cast<unsigned>(k16 + 8)) & 0xFFU);
        const __m128i m0 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(core::detail::kBitSpread.m[b0]));
        const __m128i m1 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(core::detail::kBitSpread.m[b1]));
        const __m256i mask16 = _mm256_set_m128i(m1, m0);
        const __m256i w16 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wrow + k16));
        const __m256i sel = _mm256_and_si256(w16, mask16);
        a[k16 / 8] =
            _mm256_add_epi32(a[k16 / 8], _mm256_cvtepi16_epi32(_mm256_castsi256_si128(sel)));
        a[k16 / 8 + 1] = _mm256_add_epi32(
            a[k16 / 8 + 1], _mm256_cvtepi16_epi32(_mm256_extracti128_si256(sel, 1)));
      }
    }
    for (int v = 0; v < 8; ++v) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(accw + 8 * v), a[v]);
    }
  }
}

#endif  // NSC_KERNELS_X86

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

constexpr Kernels kScalarKernels{&sweep_badmask_scalar, &accumulate_word_scalar,
                                 &accumulate_row_scalar, &accumulate_core_scalar, Isa::kScalar};
constexpr Kernels kSwarKernels{&sweep_badmask_swar, &core::hot_accumulate_word,
                               &accumulate_row_swar, &accumulate_core_swar, Isa::kSwar};
#if NSC_KERNELS_X86
constexpr Kernels kSseKernels{&sweep_badmask_sse, &accumulate_word_sse, &accumulate_row_sse,
                              &accumulate_core_sse, Isa::kSse};
constexpr Kernels kAvx2Kernels{&sweep_badmask_avx2, &accumulate_word_avx2, &accumulate_row_avx2,
                               &accumulate_core_avx2, Isa::kAvx2};
#endif

Isa probe_best_isa() {
#if NSC_KERNELS_X86
  // __builtin_cpu_init() runs via constructor before main on GCC/Clang; the
  // supports checks are plain bit tests after that.
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
  if (__builtin_cpu_supports("sse4.1")) return Isa::kSse;
#endif
  return Isa::kSwar;
}

}  // namespace

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSwar:
      return "swar";
    case Isa::kSse:
      return "sse";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::optional<Isa> parse_isa(std::string_view name) noexcept {
  if (name == "scalar") return Isa::kScalar;
  if (name == "swar") return Isa::kSwar;
  if (name == "sse") return Isa::kSse;
  if (name == "avx2") return Isa::kAvx2;
  return std::nullopt;
}

Isa best_supported_isa() noexcept {
  static const Isa kBest = probe_best_isa();
  return kBest;
}

const Kernels& kernels_for(Isa isa) noexcept {
  if (static_cast<int>(isa) > static_cast<int>(best_supported_isa())) {
    isa = best_supported_isa();
  }
  switch (isa) {
    case Isa::kScalar:
      return kScalarKernels;
    case Isa::kSwar:
      return kSwarKernels;
#if NSC_KERNELS_X86
    case Isa::kSse:
      return kSseKernels;
    case Isa::kAvx2:
      return kAvx2Kernels;
#else
    case Isa::kSse:
    case Isa::kAvx2:
      return kSwarKernels;  // Demotion above makes this unreachable.
#endif
  }
  return kSwarKernels;
}

const Kernels& select_kernels() noexcept {
  if (const char* force = std::getenv("NSC_FORCE_ISA"); force != nullptr && force[0] != '\0') {
    if (const auto forced = parse_isa(force); forced.has_value()) {
      return kernels_for(*forced);
    }
  }
  return kernels_for(best_supported_isa());
}

int strategy_cut(Strategy s) noexcept {
  switch (s) {
    case Strategy::kSparse:
      return 65;
    case Strategy::kHybrid:
      return core::kDenseWordCut;
    case Strategy::kDense:
      return 0;
  }
  return core::kDenseWordCut;
}

void update_profile(CoreProfile& p, std::uint32_t words, std::uint32_t bits,
                    int dense_mean_cut) noexcept {
  p.words += words;
  p.bits += bits;
  if (p.words < kProfileWindow) return;
  const std::uint32_t mean = p.bits / p.words;
  if (mean <= kSparseMeanCut) {
    p.strategy = Strategy::kSparse;
  } else if (mean >= static_cast<std::uint32_t>(dense_mean_cut)) {
    p.strategy = Strategy::kDense;
  } else {
    p.strategy = Strategy::kHybrid;
  }
  // Exponential decay: the window keeps half its weight so the strategy can
  // track density drift without thrashing on one atypical tick.
  p.words /= 2;
  p.bits /= 2;
}

}  // namespace nsc::kernels
