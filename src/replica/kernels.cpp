#include "src/replica/kernels.hpp"

#include <cstring>

#include "src/core/neuron_hot.hpp"
#include "src/core/types.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define NSC_REPLICA_X86 1
#else
#define NSC_REPLICA_X86 0
#endif

namespace nsc::replica {

namespace {

// ---------------------------------------------------------------------------
// Portable fallback: reuse the solo kernel's byte-array sweep, then pack the
// bad bytes (each 0 or 1) into the bit-mask interface.
// ---------------------------------------------------------------------------

void sweep_badmask_portable(std::int32_t* vrow, const std::int32_t* acc, const std::int32_t* hot,
                            std::uint64_t bad[4]) {
  std::uint8_t bytes[core::kCoreSize];
  core::hot_neuron_sweep(vrow, acc, hot, bytes);
  for (int w = 0; w < 4; ++w) {
    std::uint64_t m = 0;
    for (int k = 0; k < 64; ++k) {
      m |= static_cast<std::uint64_t>(bytes[w * 64 + k]) << static_cast<unsigned>(k);
    }
    bad[w] = m;
  }
}

#if NSC_REPLICA_X86

// ---------------------------------------------------------------------------
// AVX2 variants. Same int32 arithmetic as the portable kernels lane for
// lane: add, clamp via 32-bit signed min/max, compare — no reassociation, no
// widening differences, so the results are bit-identical.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i clamp_epi32(__m256i x, __m256i lo, __m256i hi) {
  return _mm256_max_epi32(_mm256_min_epi32(x, hi), lo);
}

__attribute__((target("avx2"))) void sweep_badmask_avx2(std::int32_t* vrow,
                                                        const std::int32_t* acc,
                                                        const std::int32_t* hot,
                                                        std::uint64_t bad[4]) {
  const std::int32_t* leak = hot;
  const std::int32_t* alpha = hot + core::kCoreSize;
  const std::int32_t* floor_le = hot + 2 * core::kCoreSize;
  const __m256i lo = _mm256_set1_epi32(core::kPotentialMin);
  const __m256i hi = _mm256_set1_epi32(core::kPotentialMax);
  for (int w = 0; w < 4; ++w) {
    std::uint64_t m = 0;
    for (int k = 0; k < 64; k += 8) {
      const int j = w * 64 + k;
      __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vrow + j));
      if (acc != nullptr) {
        x = _mm256_add_epi32(x, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + j)));
        x = clamp_epi32(x, lo, hi);
      }
      x = _mm256_add_epi32(x, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(leak + j)));
      x = clamp_epi32(x, lo, hi);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(vrow + j), x);
      // bad = (x >= alpha) | (x <= floor_le) == !((x < alpha) & (x > floor_le)).
      const __m256i below_alpha = _mm256_cmpgt_epi32(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(alpha + j)), x);
      const __m256i above_floor = _mm256_cmpgt_epi32(
          x, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(floor_le + j)));
      const auto good = static_cast<std::uint32_t>(_mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_and_si256(below_alpha, above_floor))));
      m |= static_cast<std::uint64_t>(~good & 0xFFU) << static_cast<unsigned>(k);
    }
    bad[w] = m;
  }
}

__attribute__((target("avx2"))) void accumulate_word_avx2(std::int32_t* acc,
                                                          const std::int16_t* wrow,
                                                          std::uint64_t bits) {
  for (int k = 0; k < 64; k += 16) {
    // Two bytes of `bits` expand to 16 int16 select masks via the same 4 KiB
    // LUT the scalar kernel uses (one 16-byte row per byte value).
    const auto b0 = static_cast<unsigned>((bits >> static_cast<unsigned>(k)) & 0xFFU);
    const auto b1 = static_cast<unsigned>((bits >> static_cast<unsigned>(k + 8)) & 0xFFU);
    const __m128i m0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(core::detail::kBitSpread.m[b0]));
    const __m128i m1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(core::detail::kBitSpread.m[b1]));
    const __m256i mask16 = _mm256_set_m128i(m1, m0);
    const __m256i w16 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wrow + k));
    const __m256i sel = _mm256_and_si256(w16, mask16);
    const __m256i lo32 = _mm256_cvtepi16_epi32(_mm256_castsi256_si128(sel));
    const __m256i hi32 = _mm256_cvtepi16_epi32(_mm256_extracti128_si256(sel, 1));
    __m256i* accv = reinterpret_cast<__m256i*>(acc + k);
    _mm256_storeu_si256(accv, _mm256_add_epi32(_mm256_loadu_si256(accv), lo32));
    __m256i* accv2 = reinterpret_cast<__m256i*>(acc + k + 8);
    _mm256_storeu_si256(accv2, _mm256_add_epi32(_mm256_loadu_si256(accv2), hi32));
  }
}

#endif  // NSC_REPLICA_X86

Kernels resolve() {
  Kernels k{};
  k.sweep_badmask = &sweep_badmask_portable;
  k.accumulate_word = &core::hot_accumulate_word;
#if NSC_REPLICA_X86
  if (__builtin_cpu_supports("avx2")) {
    k.sweep_badmask = &sweep_badmask_avx2;
    k.accumulate_word = &accumulate_word_avx2;
  }
#endif
  return k;
}

}  // namespace

const Kernels& select_kernels() {
  static const Kernels kSelected = resolve();
  return kSelected;
}

}  // namespace nsc::replica
