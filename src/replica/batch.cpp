#include "src/replica/batch.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "src/core/input_schedule.hpp"
#include "src/core/neuron_model.hpp"
#include "src/core/snapshot.hpp"
#include "src/kernels/kernels.hpp"
#include "src/util/bits.hpp"

namespace nsc::replica {

using core::CoreId;
using core::kCoreSize;
using core::NeuronParams;
using core::Tick;

/// Per-worker counters, cache-line padded: workers own disjoint replica
/// ranges but fold into the same registry, so accumulation stays local until
/// the run ends.
struct alignas(64) BatchSimulator::LocalStats {
  std::uint64_t cores_visited = 0;
  std::uint64_t events_delivered = 0;
  std::uint64_t compute_ns = 0;
};

namespace {

/// Contiguous replica range [begin, end) owned by worker `p` of `P`.
struct ReplicaRange {
  int begin;
  int end;
};

ReplicaRange replica_range(int replicas, int P, int p) {
  const int lo = static_cast<int>((static_cast<long long>(replicas) * p) / P);
  const int hi = static_cast<int>((static_cast<long long>(replicas) * (p + 1)) / P);
  return {lo, hi};
}

}  // namespace

BatchSimulator::BatchSimulator(const core::Network& net, Config cfg)
    : net_(net), cfg_(cfg), prng_(net.seed) {
  if (cfg_.replicas < 1) throw std::invalid_argument("replica: replicas must be >= 1");
  if (cfg_.threads < 1) throw std::invalid_argument("replica: threads must be >= 1");
  ncores_ = static_cast<std::size_t>(net.geom.total_cores());
  const auto R = static_cast<std::size_t>(cfg_.replicas);
  pool_ = std::make_unique<util::ThreadPool>(cfg_.threads);

  ph_compute_ = &obs_.phase("compute");
  ctr_replicas_ = &obs_.counter("replica.count");
  ctr_tick_replicas_ = &obs_.counter("replica.tick_replicas");
  ctr_cores_visited_ = &obs_.counter("cores_visited");
  ctr_cores_skipped_ = &obs_.counter("cores_skipped");
  ctr_events_delivered_ = &obs_.counter("events_delivered");
  *ctr_replicas_ = static_cast<std::uint64_t>(cfg_.replicas);

  // Shared read-only tables, built once for the one network.
  enabled_.assign(ncores_, util::BitRow256{});
  enabled_count_.assign(ncores_, 0);
  live_.assign(ncores_, 0);
  always_active_.assign(ncores_, 0);
  hot_ok_.assign(ncores_, 0);
  hot_.assign(ncores_ * core::kHotStride, 0);
  wtab_.assign(ncores_ * core::kWeightTabPerCore, 0);
  target_ok_.assign(ncores_ * kCoreSize, 0);
  const auto ncores = static_cast<CoreId>(ncores_);
  for (CoreId c = 0; c < ncores; ++c) {
    const core::CoreSpec& spec = net.core(c);
    if (spec.disabled) continue;
    live_[c] = 1;
    ++live_cores_;
    for (int j = 0; j < kCoreSize; ++j) {
      const NeuronParams& p = spec.neuron[static_cast<std::size_t>(j)];
      if (!p.enabled) continue;
      enabled_[c].set(j);
      ++enabled_count_[c];
      ++total_enabled_;
      const std::size_t nid = static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j);
      if (p.target.valid() && p.target.core < ncores && !net.core(p.target.core).disabled) {
        target_ok_[nid] = 1;
      }
    }
    if (core::core_hot_eligible(spec, enabled_count_[c])) {
      hot_ok_[c] = 1;
      core::fill_hot_core(spec, &hot_[static_cast<std::size_t>(c) * core::kHotStride],
                          &wtab_[static_cast<std::size_t>(c) * core::kWeightTabPerCore]);
    }
    always_active_[c] = core::core_always_active(spec, enabled_[c]) ? 1 : 0;
  }

  // Per-replica state: every replica starts from the network's initial
  // potentials, exactly like a freshly constructed solo simulator.
  v_.resize(R * ncores_ * kCoreSize);
  delay_.assign(R * ncores_ * kDelaySlots, util::BitRow256{});
  hot_v_ok_.assign(R * ncores_, 0);
  tick_.assign(R, 0);
  stats_.assign(R, core::KernelStats{});
  active_.resize(R);
  for (CoreId c = 0; c < ncores; ++c) {
    const core::CoreSpec& spec = net.core(c);
    std::int32_t* row0 = &v_[vbase(0, c)];
    for (int j = 0; j < kCoreSize; ++j) row0[j] = spec.neuron[static_cast<std::size_t>(j)].init_v;
  }
  for (std::size_t r = 1; r < R; ++r) {
    std::memcpy(&v_[vbase(static_cast<int>(r), 0)], &v_[vbase(0, 0)],
                ncores_ * kCoreSize * sizeof(std::int32_t));
  }
  for (int r = 0; r < cfg_.replicas; ++r) init_replica_activity(r);
}

BatchSimulator::~BatchSimulator() = default;

void BatchSimulator::init_replica_activity(int r) {
  const auto ncores = static_cast<CoreId>(ncores_);
  active_[static_cast<std::size_t>(r)] = core::ActiveSet(0, ncores, kDelaySlots);
  core::ActiveSet& active = active_[static_cast<std::size_t>(r)];
  for (CoreId c = 0; c < ncores; ++c) {
    util::BitRow256* rows =
        &delay_[(static_cast<std::size_t>(r) * ncores_ + static_cast<std::size_t>(c)) *
                kDelaySlots];
    if (live_[c] == 0) {
      // The worklist never visits a disabled core; drop any restored slot
      // bits once instead of carrying them forever.
      for (int s = 0; s < kDelaySlots; ++s) rows[s].reset();
      continue;
    }
    const core::CoreSpec& spec = net_.core(c);
    const std::int32_t* vrow = &v_[vbase(r, c)];
    hot_v_ok_[static_cast<std::size_t>(r) * ncores_ + static_cast<std::size_t>(c)] =
        core::hot_potentials_safe(vrow) ? 1 : 0;
    if (always_active_[c] != 0 || core::core_restless_at(spec, enabled_[c], vrow)) {
      active.set_restless(c, true);
    }
    for (int s = 0; s < kDelaySlots; ++s) {
      if (rows[s].any()) active.mark_event(c, s);
    }
  }
}

Tick BatchSimulator::now(int r) const {
  return tick_.at(static_cast<std::size_t>(r));
}

const core::KernelStats& BatchSimulator::stats(int r) const {
  return stats_.at(static_cast<std::size_t>(r));
}

core::KernelStats BatchSimulator::aggregate_stats() const {
  core::KernelStats agg;
  for (const core::KernelStats& s : stats_) {
    agg.ticks += s.ticks;
    agg.spikes += s.spikes;
    agg.sops += s.sops;
    agg.axon_events += s.axon_events;
    agg.neuron_updates += s.neuron_updates;
    agg.dropped_spikes += s.dropped_spikes;
  }
  return agg;
}

void BatchSimulator::reset_stats() {
  for (core::KernelStats& s : stats_) s.reset();
}

void BatchSimulator::reset_metrics() noexcept {
  obs_.reset();
  *ctr_replicas_ = static_cast<std::uint64_t>(cfg_.replicas);
}

void BatchSimulator::process_core(int r, CoreId c, Tick t, core::SpikeSink* sink, LocalStats& ls) {
  ++ls.cores_visited;
  util::BitRow256& axons = slot_of(r, c, t);
  const core::CoreSpec& spec = net_.core(c);
  core::KernelStats& st = stats_[static_cast<std::size_t>(r)];
  const auto core_axons = static_cast<std::uint64_t>(axons.count());
  if (enabled_count_[c] == 0) {
    axons.reset();
    st.axon_events += core_axons;
    return;
  }

  const bool hot =
      hot_ok_[c] != 0 &&
      hot_v_ok_[static_cast<std::size_t>(r) * ncores_ + static_cast<std::size_t>(c)] != 0;
  core::ActiveSet& active = active_[static_cast<std::size_t>(r)];

  // Synapse phase: identical word-level walk to compass::phase_compute; only
  // the accumulator's owner (this replica's slice) differs.
  std::int32_t acc[kCoreSize];
  if (core_axons != 0) {
    std::fill(acc, acc + kCoreSize, 0);
    const util::BitRow256& en = enabled_[c];
    if (hot) {
      const std::int16_t* wt = &wtab_[static_cast<std::size_t>(c) * core::kWeightTabPerCore];
      axons.for_each_set([&](int i) {
        const std::int16_t* wrow =
            wt + static_cast<std::size_t>(spec.axon_type[static_cast<std::size_t>(i)]) * kCoreSize;
        spec.crossbar.row(i).for_each_masked_word(en, [&](int base, std::uint64_t bits) {
          const int pc = util::popcount64(bits);
          st.sops += static_cast<std::uint64_t>(pc);
          if (pc >= core::kDenseWordCut) {
            kern_.accumulate_word(acc + base, wrow + base, bits);
            return;
          }
          do {
            const int j = base + util::lowest_set(bits);
            acc[j] += wrow[j];
            bits = util::clear_lowest(bits);
          } while (bits != 0);
        });
      });
    } else {
      axons.for_each_set([&](int i) {
        const int g = spec.axon_type[static_cast<std::size_t>(i)];
        spec.crossbar.row(i).for_each_masked_word(en, [&](int base, std::uint64_t bits) {
          st.sops += static_cast<std::uint64_t>(util::popcount64(bits));
          do {
            const int j = base + util::lowest_set(bits);
            const NeuronParams& pj = spec.neuron[static_cast<std::size_t>(j)];
            if (pj.stochastic_weight == 0) {
              acc[j] += pj.weight[g];
            } else {
              acc[j] += core::synapse_delta(pj, g, prng_, c, static_cast<std::uint32_t>(j), t,
                                            static_cast<std::uint32_t>(i));
            }
            bits = util::clear_lowest(bits);
          } while (bits != 0);
        });
      });
    }
  }

  const bool check_restless = always_active_[c] == 0;
  bool restless = false;
  // Spike emission/delivery tail. Deliveries are always replica-local: a
  // worker owns every core of its replicas, so there is no outbox and no
  // exchange phase, and recorded spikes go straight to the replica's sink
  // (the walk already visits cores in canonical ascending order).
  const auto emit = [&](int j, const NeuronParams& pj, std::size_t nid) {
    ++st.spikes;
    if (sink != nullptr) sink->on_spike(t, c, static_cast<std::uint16_t>(j));
    if (target_ok_[nid] == 0) {
      ++st.dropped_spikes;
      return;
    }
    const Tick arrive = t + pj.target.delay;
    slot_of(r, pj.target.core, arrive).set(pj.target.axon);
    active.mark_event(pj.target.core, static_cast<int>(arrive % kDelaySlots));
    ++ls.events_delivered;
  };
  if (hot) {
    std::int32_t* vrow = &v_[vbase(r, c)];
    std::uint64_t bad[4];
    kern_.sweep_badmask(vrow, core_axons != 0 ? acc : nullptr,
                        &hot_[static_cast<std::size_t>(c) * core::kHotStride], bad);
    for (int w = 0; w < 4; ++w) {
      std::uint64_t word = bad[w];
      while (word != 0) {
        const int j = w * 64 + util::lowest_set(word);
        word = util::clear_lowest(word);
        std::int32_t vj = vrow[j];
        const NeuronParams& pj = spec.neuron[static_cast<std::size_t>(j)];
        const bool fired =
            core::threshold_fire_reset(vj, pj, prng_, c, static_cast<std::uint32_t>(j), t);
        vrow[j] = vj;
        if (check_restless && !core::idle_quiescent(pj, vj)) restless = true;
        if (fired) {
          emit(j, pj, static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j));
        }
      }
    }
  } else {
    enabled_[c].for_each_set([&](int j) {
      const NeuronParams& pj = spec.neuron[static_cast<std::size_t>(j)];
      const std::size_t nid = static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j);
      std::int32_t vj = v_[vbase(r, c) + static_cast<std::size_t>(j)];
      if (core_axons != 0) {
        vj = core::clamp_potential(static_cast<std::int64_t>(vj) + acc[j]);
      }
      const bool fired =
          core::leak_threshold_update(vj, pj, prng_, c, static_cast<std::uint32_t>(j), t);
      v_[vbase(r, c) + static_cast<std::size_t>(j)] = vj;
      if (check_restless && !core::idle_quiescent(pj, vj)) restless = true;
      if (fired) emit(j, pj, nid);
    });
  }
  if (check_restless) active.set_restless(c, restless);

  axons.reset();
  st.axon_events += core_axons;
}

void BatchSimulator::run(Tick nticks, const core::InputSchedule* const* inputs,
                         core::SpikeSink* const* sinks) {
  if (nticks <= 0) return;
  const bool obs_on = obs::kEnabled && cfg_.collect_phase_metrics;
  const int P = cfg_.threads;
  std::vector<LocalStats> local(static_cast<std::size_t>(P));

  pool_->run_all([&](int p) {
    const ReplicaRange own = replica_range(cfg_.replicas, P, p);
    if (own.begin >= own.end) return;
    LocalStats& ls = local[static_cast<std::size_t>(p)];
    const std::uint64_t w0 = obs_on ? obs::now_ns() : 0;
    const std::size_t words = active_[static_cast<std::size_t>(own.begin)].word_count();
    std::vector<std::uint64_t> masks(static_cast<std::size_t>(own.end - own.begin));
    for (Tick i = 0; i < nticks; ++i) {
      // Input injection at each replica's local tick; inputs aimed at a
      // statically disabled core are absorbed, exactly as in a solo run.
      for (int r = own.begin; r < own.end; ++r) {
        const Tick t = tick_[static_cast<std::size_t>(r)] + i;
        const core::InputSchedule* in = inputs != nullptr ? inputs[r] : nullptr;
        if (in == nullptr) continue;
        core::ActiveSet& active = active_[static_cast<std::size_t>(r)];
        for (const core::InputSpike& s : in->at(t)) {
          if (live_[s.core] == 0) continue;
          slot_of(r, s.core, t).set(s.axon);
          active.mark_event(s.core, static_cast<int>(t % kDelaySlots));
        }
      }
      // Merged worklist walk: one ascending scan over the OR of every owned
      // replica's active word, so a core's shared tables (crossbar rows,
      // weight table, hot constants) are loaded once and every replica that
      // needs the core updates against them back-to-back while they are
      // cache-hot. Per replica the scan still visits cores in ascending
      // order — the canonical spike order is preserved.
      for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t any = 0;
        for (int r = own.begin; r < own.end; ++r) {
          const int si = static_cast<int>((tick_[static_cast<std::size_t>(r)] + i) % kDelaySlots);
          const std::uint64_t m = active_[static_cast<std::size_t>(r)].take_word(si, w);
          masks[static_cast<std::size_t>(r - own.begin)] = m;
          any |= m;
        }
        while (any != 0) {
          const int b = util::lowest_set(any);
          any = util::clear_lowest(any);
          const auto c = static_cast<CoreId>(w * 64 + static_cast<std::size_t>(b));
          const std::uint64_t bit = std::uint64_t{1} << static_cast<unsigned>(b);
          for (int r = own.begin; r < own.end; ++r) {
            if ((masks[static_cast<std::size_t>(r - own.begin)] & bit) == 0) continue;
            const Tick t = tick_[static_cast<std::size_t>(r)] + i;
            process_core(r, c, t, sinks != nullptr ? sinks[r] : nullptr, ls);
          }
        }
      }
      for (int r = own.begin; r < own.end; ++r) {
        // Skipped cores still run their (no-op) neuron pass on the chip:
        // count every enabled neuron so cross-backend stats equality is
        // independent of the worklist (same rule as compass).
        stats_[static_cast<std::size_t>(r)].neuron_updates += total_enabled_;
        if (sinks != nullptr && sinks[r] != nullptr) {
          sinks[r]->on_tick_end(tick_[static_cast<std::size_t>(r)] + i);
        }
      }
    }
    if (obs_on) ls.compute_ns += obs::now_ns() - w0;
  });

  for (int r = 0; r < cfg_.replicas; ++r) {
    stats_[static_cast<std::size_t>(r)].ticks += nticks;
    tick_[static_cast<std::size_t>(r)] += nticks;
  }
  std::uint64_t visited = 0;
  for (const LocalStats& ls : local) {
    visited += ls.cores_visited;
    *ctr_events_delivered_ += ls.events_delivered;
    if (ls.compute_ns != 0) ph_compute_->add(ls.compute_ns);
  }
  *ctr_cores_visited_ += visited;
  *ctr_cores_skipped_ += static_cast<std::uint64_t>(nticks) *
                             static_cast<std::uint64_t>(cfg_.replicas) * live_cores_ -
                         visited;
  *ctr_tick_replicas_ +=
      static_cast<std::uint64_t>(nticks) * static_cast<std::uint64_t>(cfg_.replicas);
}

void BatchSimulator::save_checkpoint(int r, std::ostream& os) const {
  if (r < 0 || r >= cfg_.replicas) throw std::out_of_range("replica: bad replica index");
  core::Snapshot snap;
  snap.backend = core::SnapshotBackend::kCompass;
  snap.geom = net_.geom;
  snap.net_seed = net_.seed;
  snap.tick = tick_[static_cast<std::size_t>(r)];
  snap.stats = stats_[static_cast<std::size_t>(r)];
  snap.dead_cores.resize(ncores_, 0);
  for (std::size_t c = 0; c < ncores_; ++c) snap.dead_cores[c] = live_[c] != 0 ? 0 : 1;
  snap.dead_links.assign(static_cast<std::size_t>(net_.geom.chips()) * 4, 0);
  snap.v.assign(v_.begin() + static_cast<std::ptrdiff_t>(vbase(r, 0)),
                v_.begin() + static_cast<std::ptrdiff_t>(vbase(r, 0) + ncores_ * kCoreSize));
  snap.delay_words.reserve(ncores_ * kDelaySlots * util::BitRow256::kWords);
  const util::BitRow256* rows = &delay_[static_cast<std::size_t>(r) * ncores_ * kDelaySlots];
  for (std::size_t i = 0; i < ncores_ * kDelaySlots; ++i) {
    for (int w = 0; w < util::BitRow256::kWords; ++w) snap.delay_words.push_back(rows[i].word(w));
  }
  core::save_snapshot(snap, os);
}

void BatchSimulator::load_checkpoint(int r, std::istream& is) {
  if (r < 0 || r >= cfg_.replicas) throw std::out_of_range("replica: bad replica index");
  const core::Snapshot snap = core::load_snapshot(is);
  if (snap.geom != net_.geom) {
    throw std::runtime_error("checkpoint geometry does not match this simulator's network");
  }
  if (snap.net_seed != net_.seed) {
    throw std::runtime_error("checkpoint was taken against a different network (seed mismatch)");
  }
  // The batch backend models no runtime faults: a snapshot whose fault state
  // goes beyond the network's static disabled set cannot be represented.
  for (std::size_t c = 0; c < ncores_; ++c) {
    if (snap.dead_cores[c] != 0 && net_.core(static_cast<CoreId>(c)).disabled == 0) {
      throw std::runtime_error("replica: checkpoint carries runtime core faults");
    }
  }
  for (const std::uint8_t dead : snap.dead_links) {
    if (dead != 0) throw std::runtime_error("replica: checkpoint carries runtime link faults");
  }
  if (snap.v.size() != ncores_ * kCoreSize ||
      snap.delay_words.size() != ncores_ * kDelaySlots * util::BitRow256::kWords) {
    throw std::runtime_error("replica: checkpoint state size does not match the network");
  }
  tick_[static_cast<std::size_t>(r)] = snap.tick;
  stats_[static_cast<std::size_t>(r)] = snap.stats;
  std::copy(snap.v.begin(), snap.v.end(), v_.begin() + static_cast<std::ptrdiff_t>(vbase(r, 0)));
  util::BitRow256* rows = &delay_[static_cast<std::size_t>(r) * ncores_ * kDelaySlots];
  for (std::size_t i = 0; i < ncores_ * kDelaySlots; ++i) {
    for (int w = 0; w < util::BitRow256::kWords; ++w) {
      rows[i].set_word(w,
                       snap.delay_words[i * util::BitRow256::kWords + static_cast<std::size_t>(w)]);
    }
  }
  // Worklists and the per-replica hot/generic split are derived state:
  // re-derive them from the restored slice (hostile potentials outside the
  // proven bound demote this replica's cores to the exact generic path —
  // the same rule compass applies at init_activity).
  init_replica_activity(r);
}

}  // namespace nsc::replica
