// Runtime-dispatched kernels for the replica-batched backend.
//
// The batch layout makes wide SIMD pay: one merged walk touches the same
// core's shared tables for every replica back-to-back, so the per-replica
// inner loops (the integrate+leak sweep and the dense-word synaptic
// accumulate) dominate the run and their vector width translates directly
// into aggregate throughput. The portable baseline build targets generic
// x86-64 (SSE2), so these loops are provided in two semantically identical
// expressions — a portable fallback reusing src/core/neuron_hot.hpp and an
// AVX2 one — selected once per process via __builtin_cpu_supports. Integer
// arithmetic is identical lane-for-lane in every variant, so spike output
// (and therefore every golden trace hash) does not depend on the host ISA;
// tests/test_replica.cpp pins this against solo-run witnesses.
#pragma once

#include <cstdint>

namespace nsc::replica {

/// Vectorizable kernel entry points, resolved once at startup.
struct Kernels {
  /// The fast-path integrate+leak sweep over one (replica, core) slice,
  /// fused with bad-lane extraction: folds `acc` (when non-null) and the
  /// leak row into all 256 potentials with the hardware clamp after each add
  /// (exactly core::hot_neuron_sweep), and sets bit k of bad[k / 64] when
  /// neuron k needs the exact slow path this tick (possible fire or floor
  /// event). The bit-mask form replaces the byte array + rescan of the solo
  /// kernel: the vector compare produces the mask for free.
  void (*sweep_badmask)(std::int32_t* vrow, const std::int32_t* acc, const std::int32_t* hot,
                        std::uint64_t bad[4]);

  /// Dense-word synaptic accumulate: adds `wrow[k]` into `acc[k]` for every
  /// set bit k of `bits` (exactly core::hot_accumulate_word). `acc`/`wrow`
  /// point at the word's base lane (a multiple of 64).
  void (*accumulate_word)(std::int32_t* acc, const std::int16_t* wrow, std::uint64_t bits);
};

/// The best variant this CPU supports. Stable for the process lifetime.
[[nodiscard]] const Kernels& select_kernels();

}  // namespace nsc::replica
