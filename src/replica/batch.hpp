// Replica-batched multi-instance backend (docs/REPLICA.md).
//
// Serving the ROADMAP's million-user story means running many *identical-
// topology* network instances that differ only in neuron state and input
// stream. A solo compass::Simulator per instance re-streams the shared
// read-only tables — crossbar rows, the dense weight tables, the hot SoA
// constant rows — once per instance per tick. BatchSimulator instead holds N
// replicas of one network in a replica-major state layout and advances all
// of them through each tick with a single merged worklist walk: for every
// active core, the shared tables are loaded once and the per-replica state
// updates run back-to-back while those tables are cache-hot (the same SoA
// batching trick Compass applies across neurons, applied across instances).
//
// Exactness bar (PR 4/5 standard): every replica is spike-for-spike
// identical to a solo single-process compass run of the same network, from
// the same restored state, fed the same input schedule. The argument:
//  - State is fully partitioned by replica (potentials, delay rings,
//    worklists, stats, local tick counters); replicas interact only through
//    the shared *read-only* network tables and the shared counter-based PRNG,
//    whose draws are keyed by (core, neuron, tick) and therefore identical
//    for every replica and for the solo run.
//  - Within one replica a tick performs the same phases in the same order as
//    compass::Simulator::phase_compute: inject inputs, walk active cores in
//    ascending core order, integrate synapses word-by-word, sweep neurons,
//    emit spikes in (core, neuron) ascending order, deliver locally into the
//    replica's own delay ring. Interleaving other replicas' cores between
//    those steps touches disjoint state, so it cannot perturb the result —
//    the same disjointness argument that makes compass's two-barrier tick
//    race-free, applied across replicas instead of across partitions.
//  - Replicas advance on their own local tick counters, so a replica
//    restored from a checkpoint taken at tick T continues exactly the solo
//    trajectory from T even when batched with replicas at other ticks.
//
// Threads partition *replicas* (never cores): each worker owns every core of
// its replica range, so all spike deliveries stay worker-local and the run
// needs no exchange phase, no outboxes and no per-tick barriers.
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "src/core/active_set.hpp"
#include "src/core/network.hpp"
#include "src/core/neuron_hot.hpp"
#include "src/kernels/kernels.hpp"
#include "src/obs/obs.hpp"
#include "src/util/bitrow.hpp"
#include "src/util/prng.hpp"
#include "src/util/thread_pool.hpp"

namespace nsc::util {
class ThreadPool;
}

namespace nsc::replica {

struct Config {
  int replicas = 1;  ///< Batched instances N (>= 1) of the one network.
  int threads = 1;   ///< Workers; replicas are split contiguously across them.
  /// Runtime toggle for the per-phase wall-time metrics; spike output is
  /// identical either way (NSC_OBS=0 compiles the probes out entirely).
  bool collect_phase_metrics = true;
};

/// N instances of one network advancing in lockstep through a merged
/// worklist walk. Not a core::Simulator: the interface is per-replica
/// (per-replica inputs, sinks, stats, ticks and checkpoints), which the
/// single-instance base signature cannot express.
class BatchSimulator {
 public:
  /// The network must outlive the simulator.
  BatchSimulator(const core::Network& net, Config cfg);
  ~BatchSimulator();

  BatchSimulator(const BatchSimulator&) = delete;
  BatchSimulator& operator=(const BatchSimulator&) = delete;

  /// Advances every replica by `nticks` from its own local tick.
  /// `inputs`/`sinks` are indexed by replica and may be null (or hold null
  /// entries) — inputs are read at each replica's *local* tick. Sinks are
  /// invoked from the worker thread that owns the replica; a sink shared
  /// between replicas owned by different workers would race.
  void run(core::Tick nticks, const core::InputSchedule* const* inputs,
           core::SpikeSink* const* sinks);

  [[nodiscard]] int replicas() const noexcept { return cfg_.replicas; }

  /// Local tick of replica `r` (replicas restored from checkpoints advance
  /// from the checkpoint's tick, so replicas may disagree).
  [[nodiscard]] core::Tick now(int r) const;

  /// Per-replica kernel stats, bit-identical to the solo run's.
  [[nodiscard]] const core::KernelStats& stats(int r) const;

  /// Sum of all replicas' stats (the aggregate-throughput view).
  [[nodiscard]] core::KernelStats aggregate_stats() const;

  void reset_stats();

  /// Writes replica `r` as a plain NSCK snapshot, interchangeable with the
  /// TN / compass / dist backends: restoring it into a solo simulator (or
  /// another replica slot) resumes the identical trajectory. Counters are
  /// the replica's own, so a restored solo run reports the same totals the
  /// solo trajectory would have accumulated.
  void save_checkpoint(int r, std::ostream& os) const;

  /// Restores replica `r` from any NSCK snapshot of the same network.
  /// Snapshots carrying runtime fault state (cores or links failed mid-run
  /// by a fault campaign) are rejected: the batch backend models no faults.
  /// Hostile potentials (outside the hot sweep's proven bound) demote the
  /// affected cores of *this replica only* to the exact generic path.
  void load_checkpoint(int r, std::istream& is);

  [[nodiscard]] obs::Registry& metrics() noexcept { return obs_; }
  void reset_metrics() noexcept;

 private:
  struct LocalStats;

  void process_core(int r, core::CoreId c, core::Tick t, core::SpikeSink* sink, LocalStats& ls);
  void init_replica_activity(int r);

  [[nodiscard]] std::size_t vbase(int r, core::CoreId c) const noexcept {
    return (static_cast<std::size_t>(r) * ncores_ + static_cast<std::size_t>(c)) *
           core::kCoreSize;
  }
  [[nodiscard]] util::BitRow256& slot_of(int r, core::CoreId c, core::Tick t) noexcept {
    return delay_[(static_cast<std::size_t>(r) * ncores_ + static_cast<std::size_t>(c)) *
                      kDelaySlots +
                  static_cast<std::size_t>(t % kDelaySlots)];
  }

  static constexpr int kDelaySlots = core::kMaxDelay + 1;

  const core::Network& net_;
  Config cfg_;
  util::CounterPrng prng_;
  kernels::Kernels kern_ = kernels::select_kernels();
  std::size_t ncores_ = 0;
  std::unique_ptr<util::ThreadPool> pool_;

  // Shared read-only per-network tables (built once, used by every replica).
  std::vector<util::BitRow256> enabled_;     ///< Enabled-neuron mask per core.
  std::vector<int> enabled_count_;           ///< Enabled neurons per core.
  std::vector<std::uint8_t> live_;           ///< 1 = core not statically disabled.
  std::vector<std::uint8_t> always_active_;  ///< Parameter-level idle dynamics.
  std::vector<std::uint8_t> hot_ok_;         ///< Parameter-eligible fast path.
  std::vector<std::int32_t> hot_;            ///< SoA leak|alpha|floor rows.
  std::vector<std::int16_t> wtab_;           ///< Dense weight rows per axon type.
  std::vector<std::uint8_t> target_ok_;      ///< Per neuron: target deliverable.
  std::uint64_t total_enabled_ = 0;          ///< Enabled neurons on live cores.
  std::uint64_t live_cores_ = 0;

  // Per-replica state, replica-major so one replica's slice is contiguous
  // (checkpoints copy a slice; the merged walk strides by replica).
  std::vector<std::int32_t> v_;           ///< [(r * ncores + c) * 256 + j].
  std::vector<util::BitRow256> delay_;    ///< [(r * ncores + c) * 16 + slot].
  std::vector<std::uint8_t> hot_v_ok_;    ///< [r * ncores + c]: potentials in bound.
  std::vector<core::ActiveSet> active_;   ///< One worklist per replica.
  std::vector<core::Tick> tick_;          ///< Local tick per replica.
  std::vector<core::KernelStats> stats_;  ///< Per-replica counters.

  // Observability (docs/OBSERVABILITY.md): counters fold at run end.
  obs::Registry obs_;
  obs::PhaseAccum* ph_compute_ = nullptr;
  std::uint64_t* ctr_replicas_ = nullptr;
  std::uint64_t* ctr_tick_replicas_ = nullptr;
  std::uint64_t* ctr_cores_visited_ = nullptr;
  std::uint64_t* ctr_cores_skipped_ = nullptr;
  std::uint64_t* ctr_events_delivered_ = nullptr;
};

}  // namespace nsc::replica
