// The nsc_serve daemon core: a single-threaded, poll-driven event loop that
// keeps many independent simulator instances resident behind one Unix-domain
// socket (docs/SERVE.md).
//
// Design invariants:
//   * Load once, serve many — each named network is loaded and lint-gated at
//     startup (analysis::lint error severity refuses it, the nsc_lint
//     admission bar) and shared immutably across every session over it.
//   * One thread, bounded work — commands are serialized by the event loop
//     and each is bounded (max_ticks_per_cmd, max frame payload), so a
//     hostile or heavy tenant can delay others but never wedge the daemon.
//     Tests drive the server from its own std::thread; request_stop() is the
//     only cross-thread entry point (an atomic flag the loop polls).
//   * Backpressure over blocking — per-session spike queues drop newest past
//     their cap; a client whose reply backlog exceeds max_conn_out_bytes is
//     evicted (slow-client shedding). The daemon never blocks on a tenant.
//   * Failure is contained — unparseable framing or a broken handshake kills
//     that connection and the sessions it owns; a well-framed but invalid
//     command gets one kError reply. Nothing a client sends terminates the
//     daemon or touches another tenant's sessions.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/network.hpp"
#include "src/ipc/endpoint.hpp"
#include "src/obs/obs.hpp"
#include "src/serve/session.hpp"

namespace nsc::serve {

class Server {
 public:
  struct Config {
    std::string socket_path;
    /// Networks to load at startup: (name, .nsc file path).
    std::vector<std::pair<std::string, std::string>> net_paths;
    int max_sessions = 16;       ///< Admission cap across all tenants.
    int max_connections = 64;    ///< Accept cap; excess connects are dropped.
    int default_threads = 1;     ///< compass threads when kCreate asks for 0.
    SessionLimits limits;
    /// Largest command payload the daemon will buffer (restore blobs are the
    /// biggest legitimate frames); a header past this kills the connection.
    std::uint32_t max_frame_payload = 256u << 20;
    /// Reply backlog bound per connection; exceeding it evicts the client.
    std::size_t max_conn_out_bytes = 64u << 20;
    /// Refuse networks whose lint report contains error-severity findings.
    bool lint_admission = true;
    /// Event-loop poll granularity (stop-flag latency bound).
    int poll_interval_ms = 50;
  };

  explicit Server(Config cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Loads, lints and registers every configured network. Throws
  /// std::runtime_error on I/O/format failure or a lint-refused network.
  void load_networks();

  /// Registers an in-memory network (test harnesses), same lint gate.
  void add_network(const std::string& name, core::Network net);

  /// Binds the listening socket; throws std::runtime_error on failure.
  void bind();

  /// Runs the event loop until request_stop() or an installed stop signal
  /// (ipc::stop_signal_raised). On exit every session is destroyed, pending
  /// replies get a best-effort flush, and the socket path is unlinked.
  void run();

  /// Thread-safe stop request; the loop notices within poll_interval_ms.
  void request_stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

  /// "nsc-bench-v1" stats document (also served over kStats). Only safe from
  /// the server's own thread (the loop) or after run() returned.
  [[nodiscard]] std::string stats_json() const;

  [[nodiscard]] const obs::Registry& metrics() const noexcept { return metrics_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t active_sessions() const noexcept { return sessions_.size(); }

 private:
  struct Conn {
    ipc::Channel ch;
    std::vector<std::uint8_t> rbuf;
    std::vector<std::uint8_t> wbuf;
    std::size_t woff = 0;        ///< Flushed prefix of wbuf.
    bool helloed = false;
    bool dead = false;           ///< Swept (sessions destroyed) after the poll round.
    std::vector<std::uint64_t> sessions;  ///< Ids owned by this connection.
  };

  void accept_pending();
  void read_conn(Conn& conn);
  void flush_conn(Conn& conn);
  void sweep_dead();
  void drain_and_close();

  /// Parses complete frames out of conn.rbuf and dispatches them. Returns
  /// false when the byte stream is unframeable (connection must die).
  bool pump_frames(Conn& conn);
  void dispatch(Conn& conn, const ipc::Frame& frame);
  void reply(Conn& conn, Cmd kind, const void* payload, std::size_t size);
  void reply_error(Conn& conn, ErrorCode code, const std::string& msg);

  Session& session_of(std::uint64_t id);
  void destroy_session(std::uint64_t id);
  void fold_session_counters(const Session& s);

  Config cfg_;
  ipc::Listener listener_;
  std::map<std::string, std::shared_ptr<const core::Network>> nets_;
  std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::uint64_t next_session_ = 1;
  std::atomic<bool> stop_{false};
  bool draining_ = false;
  obs::Registry metrics_;
  std::uint64_t started_ns_ = 0;
  /// Counters of already-destroyed sessions, folded so daemon totals survive
  /// session churn.
  core::KernelStats retired_stats_;
  SessionCounters retired_counters_;
};

}  // namespace nsc::serve
