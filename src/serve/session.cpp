#include "src/serve/session.hpp"

#include <utility>

namespace nsc::serve {

namespace {

/// Bounded queue sink: spills recorded spikes into the session queue,
/// dropping newest past the cap so a tenant that never reads cannot grow the
/// daemon's memory without bound.
class QueueSink final : public core::SpikeSink {
 public:
  QueueSink(std::deque<core::Spike>* queue, std::size_t cap, SessionCounters* counters)
      : queue_(queue), cap_(cap), counters_(counters) {}

  void on_spike(core::Tick tick, core::CoreId core, std::uint16_t neuron) override {
    if (queue_->size() >= cap_) {
      ++counters_->spikes_dropped;
      return;
    }
    queue_->push_back({tick, core, neuron});
    ++counters_->spikes_queued;
  }

 private:
  std::deque<core::Spike>* queue_;
  std::size_t cap_;
  SessionCounters* counters_;
};

}  // namespace

Session::Session(std::shared_ptr<const core::Network> net, std::string net_name, int threads,
                 SessionLimits limits)
    : net_(std::move(net)), net_name_(std::move(net_name)), limits_(limits) {
  cfg_.threads = threads;
  sim_ = std::make_unique<compass::Simulator>(*net_, cfg_);
}

void Session::inject(const std::vector<core::InputSpike>& events) {
  if (inputs_.size() + events.size() > limits_.max_pending_inputs) {
    throw ServeError(ErrorCode::kLimitExceeded,
                     "serve: session input budget exceeded (max_pending_inputs)");
  }
  const core::Tick horizon = sim_->now();
  const auto ncores = static_cast<core::CoreId>(net_->geom.total_cores());
  for (const core::InputSpike& e : events) {
    if (e.tick < horizon) {
      throw ServeError(ErrorCode::kBadRequest, "serve: input spike scheduled in the past");
    }
    if (e.core >= ncores || e.axon >= core::kCoreSize) {
      throw ServeError(ErrorCode::kBadRequest, "serve: input spike addressed outside network");
    }
  }
  for (const core::InputSpike& e : events) inputs_.add(e);
  inputs_dirty_ = !events.empty() || inputs_dirty_;
  counters_.inputs_injected += events.size();
}

void Session::tick(core::Tick nticks, bool record) {
  if (nticks < 0) throw ServeError(ErrorCode::kBadRequest, "serve: negative tick count");
  if (nticks > limits_.max_ticks_per_cmd) {
    throw ServeError(ErrorCode::kLimitExceeded,
                     "serve: tick count exceeds per-command bound (chunk the run)");
  }
  if (nticks == 0) return;
  if (inputs_dirty_) {
    inputs_.finalize();  // Re-sorts absolute-tick events; past ones stay consumed.
    inputs_dirty_ = false;
  }
  QueueSink sink(&queue_, limits_.max_queued_spikes, &counters_);
  sim_->run(nticks, inputs_.empty() ? nullptr : &inputs_, record ? &sink : nullptr);
  counters_.ticks_served += static_cast<std::uint64_t>(nticks);
}

std::uint64_t Session::read_spikes(std::uint64_t max_spikes, std::vector<core::Spike>& out) {
  std::uint64_t n = 0;
  while (n < max_spikes && !queue_.empty()) {
    out.push_back(queue_.front());
    queue_.pop_front();
    ++n;
  }
  counters_.spikes_streamed += n;
  return queue_.size();
}

void Session::save_checkpoint(std::ostream& os) {
  sim_->save_checkpoint(os);
  ++counters_.checkpoints;
}

void Session::restore_checkpoint(std::istream& is) {
  auto fresh = std::make_unique<compass::Simulator>(*net_, cfg_);
  try {
    fresh->load_checkpoint(is);
  } catch (const std::exception& e) {
    throw ServeError(ErrorCode::kBadCheckpoint,
                     std::string("serve: checkpoint rejected: ") + e.what());
  }
  sim_ = std::move(fresh);
  ++counters_.restores;
}

}  // namespace nsc::serve
