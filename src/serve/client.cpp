#include "src/serve/client.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/ipc/endpoint.hpp"

namespace nsc::serve {

Client::Client(ipc::Channel ch, int reply_deadline_ms)
    : ch_(std::move(ch)), reply_deadline_ms_(reply_deadline_ms) {}

Client Client::connect(const std::string& socket_path, int connect_deadline_ms,
                       int reply_deadline_ms) {
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    ipc::Channel ch = ipc::connect_unix(socket_path);
    if (ch.alive()) return Client(std::move(ch), reply_deadline_ms);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    if (elapsed >= connect_deadline_ms) {
      throw std::runtime_error("serve client: cannot connect to '" + socket_path + "'");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

ipc::Frame Client::rpc(Cmd cmd, const std::vector<std::uint8_t>& payload, Cmd expect) {
  if (!ch_.send_frame(static_cast<std::uint32_t>(cmd), payload.data(), payload.size())) {
    throw std::runtime_error("serve client: daemon connection lost on send");
  }
  ipc::Frame reply;
  const ipc::RecvStatus st = ch_.recv_frame_deadline(reply, reply_deadline_ms_);
  if (st == ipc::RecvStatus::kTimeout) {
    throw std::runtime_error("serve client: reply deadline exceeded");
  }
  if (st != ipc::RecvStatus::kOk) {
    throw std::runtime_error("serve client: daemon connection lost awaiting reply");
  }
  if (reply.kind == static_cast<std::uint32_t>(Cmd::kError)) {
    std::string msg;
    const ErrorCode code = decode_error(reply.payload, msg);
    throw ServeError(code, msg.empty() ? std::string(error_code_name(code)) : msg);
  }
  if (reply.kind != static_cast<std::uint32_t>(expect)) {
    throw std::runtime_error("serve client: unexpected reply kind");
  }
  return reply;
}

HelloOk Client::hello() {
  std::vector<std::uint8_t> payload;
  ipc::put_pod(payload, HelloReq{});
  const ipc::Frame reply = rpc(Cmd::kHello, payload, Cmd::kHelloOk);
  std::size_t off = 0;
  return ipc::get_pod<HelloOk>(reply.payload, off);
}

std::uint64_t Client::create(const std::string& net_name, std::uint32_t threads) {
  std::vector<std::uint8_t> payload;
  CreateReq req;
  req.threads = threads;
  req.name_len = static_cast<std::uint32_t>(net_name.size());
  ipc::put_pod(payload, req);
  payload.insert(payload.end(), net_name.begin(), net_name.end());
  const ipc::Frame reply = rpc(Cmd::kCreate, payload, Cmd::kCreateOk);
  std::size_t off = 0;
  return ipc::get_pod<CreateOk>(reply.payload, off).session;
}

TickOk Client::tick(std::uint64_t session, core::Tick nticks, bool record) {
  std::vector<std::uint8_t> payload;
  TickReq req;
  req.session = session;
  req.nticks = nticks;
  req.record = record ? 1 : 0;
  ipc::put_pod(payload, req);
  const ipc::Frame reply = rpc(Cmd::kTick, payload, Cmd::kTickOk);
  std::size_t off = 0;
  return ipc::get_pod<TickOk>(reply.payload, off);
}

void Client::inject(std::uint64_t session, const std::vector<core::InputSpike>& events) {
  std::vector<std::uint8_t> payload;
  InjectReq req;
  req.session = session;
  req.count = events.size();
  payload.reserve(sizeof req + events.size() * sizeof(core::InputSpike));
  ipc::put_pod(payload, req);
  for (const core::InputSpike& e : events) ipc::put_pod(payload, e);
  rpc(Cmd::kInject, payload, Cmd::kAck);
}

std::uint64_t Client::read_spikes(std::uint64_t session, std::uint64_t max_spikes,
                                  std::vector<core::Spike>& out) {
  std::vector<std::uint8_t> payload;
  ReadReq req;
  req.session = session;
  req.max_spikes = max_spikes;
  ipc::put_pod(payload, req);
  const ipc::Frame reply = rpc(Cmd::kReadSpikes, payload, Cmd::kSpikesOk);
  std::size_t off = 0;
  const auto hdr = ipc::get_pod<SpikesOk>(reply.payload, off);
  const auto spikes = ipc::get_pod_array<core::Spike>(reply.payload, off,
                                                      static_cast<std::size_t>(hdr.count));
  out.insert(out.end(), spikes.begin(), spikes.end());
  return hdr.remaining;
}

void Client::read_all_spikes(std::uint64_t session, std::vector<core::Spike>& out) {
  while (read_spikes(session, 1u << 20, out) != 0) {
  }
}

std::vector<std::uint8_t> Client::checkpoint(std::uint64_t session) {
  std::vector<std::uint8_t> payload;
  SessionReq req;
  req.session = session;
  ipc::put_pod(payload, req);
  ipc::Frame reply = rpc(Cmd::kCheckpoint, payload, Cmd::kBlob);
  return std::move(reply.payload);
}

void Client::restore(std::uint64_t session, const std::vector<std::uint8_t>& blob) {
  std::vector<std::uint8_t> payload;
  SessionReq req;
  req.session = session;
  ipc::put_pod(payload, req);
  payload.insert(payload.end(), blob.begin(), blob.end());
  rpc(Cmd::kRestore, payload, Cmd::kAck);
}

void Client::destroy(std::uint64_t session) {
  std::vector<std::uint8_t> payload;
  SessionReq req;
  req.session = session;
  ipc::put_pod(payload, req);
  rpc(Cmd::kDestroy, payload, Cmd::kAck);
}

std::string Client::stats_json() {
  const ipc::Frame reply = rpc(Cmd::kStats, {}, Cmd::kStatsJson);
  return std::string(reply.payload.begin(), reply.payload.end());
}

void Client::shutdown() { rpc(Cmd::kShutdown, {}, Cmd::kAck); }

}  // namespace nsc::serve
