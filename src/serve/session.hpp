// One resident simulator instance inside the nsc_serve daemon.
//
// A session is a compass::Simulator over a network the daemon loaded once
// (shared, immutable, refcounted across sessions), plus the per-tenant state
// the protocol needs: the accumulated input schedule, a bounded queue of
// recorded output spikes awaiting kReadSpikes, and isolation counters.
//
// Exactness contract (tests/test_serve.cpp): a session driven with the same
// network, seed and injected inputs as a solo nsc_run produces a
// spike-for-spike identical stream regardless of how the ticks are chunked,
// where reads interleave, or whether a checkpoint/restore round trip happens
// mid-run. Two properties carry that: the simulator consumes inputs by its
// own internal clock from an absolute-tick schedule (so re-finalizing the
// schedule after more injections, or rewinding via restore, never replays or
// skips an event), and restore builds a fresh simulator and swaps it in only
// after the blob fully loads (a hostile blob can never corrupt live state).
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/compass/simulator.hpp"
#include "src/core/input_schedule.hpp"
#include "src/core/network.hpp"
#include "src/serve/protocol.hpp"

namespace nsc::serve {

/// Per-session backpressure bounds (Server::Config carries the defaults).
struct SessionLimits {
  std::size_t max_queued_spikes = 1u << 20;   ///< Output queue; overflow drops newest.
  std::size_t max_pending_inputs = 1u << 22;  ///< Lifetime injected-event cap.
  core::Tick max_ticks_per_cmd = 1 << 20;     ///< Bounds one kTick's work.
};

/// Per-tenant counters, isolated per session (the soak test asserts one
/// tenant's traffic never leaks into another's numbers).
struct SessionCounters {
  std::uint64_t ticks_served = 0;
  std::uint64_t spikes_queued = 0;    ///< Recorded into the queue (lifetime).
  std::uint64_t spikes_streamed = 0;  ///< Handed to the client (lifetime).
  std::uint64_t spikes_dropped = 0;   ///< Queue-overflow drops (lifetime).
  std::uint64_t inputs_injected = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t restores = 0;
};

class Session {
 public:
  /// The network is shared with the daemon's registry and other sessions of
  /// the same model; `threads` is validated by the server before this.
  Session(std::shared_ptr<const core::Network> net, std::string net_name, int threads,
          SessionLimits limits);

  /// Queues external spikes. Throws ServeError (kBadRequest) on an event
  /// addressed outside the network or into the past, (kLimitExceeded) past
  /// the lifetime input cap. All-or-nothing: on throw, nothing was queued.
  void inject(const std::vector<core::InputSpike>& events);

  /// Advances `nticks`. With `record`, output spikes land in the bounded
  /// queue (drop-newest on overflow, counted — backpressure never blocks the
  /// daemon). Throws ServeError (kLimitExceeded) when nticks exceeds the
  /// per-command bound, (kBadRequest) when negative.
  void tick(core::Tick nticks, bool record);

  /// Moves up to `max_spikes` from the queue into `out` (appended, canonical
  /// order preserved). Returns the count still queued afterwards.
  std::uint64_t read_spikes(std::uint64_t max_spikes, std::vector<core::Spike>& out);

  /// Serializes the instance's full dynamic state (the simulator's NSCK
  /// blob; the input schedule is client-owned state and not included —
  /// docs/SERVE.md documents the replay contract).
  void save_checkpoint(std::ostream& os);

  /// Restores from a blob. Loads into a fresh simulator first and swaps on
  /// success; on any failure throws ServeError (kBadCheckpoint) with the
  /// live instance untouched. The output queue is preserved (spikes already
  /// earned by the client), the input schedule is kept whole so replayed
  /// ticks re-consume the same absolute-tick events.
  void restore_checkpoint(std::istream& is);

  [[nodiscard]] core::Tick now() const { return sim_->now(); }
  [[nodiscard]] const core::KernelStats& stats() const { return sim_->stats(); }
  [[nodiscard]] const SessionCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] std::size_t queue_depth() const noexcept { return queue_.size(); }
  [[nodiscard]] const std::string& net_name() const noexcept { return net_name_; }

 private:
  std::shared_ptr<const core::Network> net_;
  std::string net_name_;
  compass::Config cfg_;
  std::unique_ptr<compass::Simulator> sim_;
  core::InputSchedule inputs_;
  bool inputs_dirty_ = false;  ///< add() since the last finalize().
  std::deque<core::Spike> queue_;
  SessionLimits limits_;
  SessionCounters counters_;
};

}  // namespace nsc::serve
