#include "src/serve/server.hpp"

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "src/analysis/lint.hpp"
#include "src/core/network_io.hpp"
#include "src/obs/json_report.hpp"

namespace nsc::serve {

namespace {

void add_stats(core::KernelStats& into, const core::KernelStats& from) {
  into.ticks += from.ticks;
  into.spikes += from.spikes;
  into.sops += from.sops;
  into.axon_events += from.axon_events;
  into.neuron_updates += from.neuron_updates;
  into.hop_sum += from.hop_sum;
  into.interchip_crossings += from.interchip_crossings;
  into.dropped_spikes += from.dropped_spikes;
  into.sum_max_core_sops += from.sum_max_core_sops;
  into.sum_max_core_axon_events += from.sum_max_core_axon_events;
  into.sum_max_core_spikes += from.sum_max_core_spikes;
}

void add_counters(SessionCounters& into, const SessionCounters& from) {
  into.ticks_served += from.ticks_served;
  into.spikes_queued += from.spikes_queued;
  into.spikes_streamed += from.spikes_streamed;
  into.spikes_dropped += from.spikes_dropped;
  into.inputs_injected += from.inputs_injected;
  into.checkpoints += from.checkpoints;
  into.restores += from.restores;
}

bool owns(const Server::Config&, const std::vector<std::uint64_t>& owned, std::uint64_t id) {
  for (const std::uint64_t s : owned) {
    if (s == id) return true;
  }
  return false;
}

}  // namespace

Server::Server(Config cfg) : cfg_(std::move(cfg)) {}

Server::~Server() = default;

void Server::load_networks() {
  for (const auto& [name, path] : cfg_.net_paths) {
    add_network(name, core::load_network(path));
  }
}

void Server::add_network(const std::string& name, core::Network net) {
  if (name.empty()) throw std::runtime_error("serve: network name must not be empty");
  if (nets_.count(name) != 0) {
    throw std::runtime_error("serve: duplicate network name '" + name + "'");
  }
  if (cfg_.lint_admission) {
    const analysis::LintReport report = analysis::lint(net);
    if (report.max_severity() == analysis::Severity::kError) {
      throw std::runtime_error(
          "serve: network '" + name + "' refused by admission lint (" +
          std::to_string(report.count(analysis::Severity::kError)) +
          " error finding(s); run nsc_lint for the report)");
    }
  }
  nets_.emplace(name, std::make_shared<const core::Network>(std::move(net)));
}

void Server::bind() { listener_ = ipc::Listener(cfg_.socket_path); }

void Server::run() {
  if (!listener_.alive()) bind();
  started_ns_ = obs::now_ns();
  std::vector<ipc::PollItem> items;
  std::vector<Conn*> item_conn;
  while (!stop_.load(std::memory_order_relaxed) && !ipc::stop_signal_raised()) {
    items.clear();
    item_conn.clear();
    {
      ipc::PollItem li;
      li.fd = listener_.fd();
      li.want_read = true;
      items.push_back(li);
      item_conn.push_back(nullptr);
    }
    for (const auto& c : conns_) {
      if (c->dead || !c->ch.alive()) continue;
      ipc::PollItem it;
      it.fd = c->ch.fd();
      it.want_read = true;
      it.want_write = c->woff < c->wbuf.size();
      items.push_back(it);
      item_conn.push_back(c.get());
    }
    const int rc = ipc::poll_wait(items, cfg_.poll_interval_ms);
    if (rc < 0) continue;  // EINTR: re-check the stop flag.
    for (std::size_t i = 0; i < items.size(); ++i) {
      Conn* conn = item_conn[i];
      if (conn == nullptr) {
        if (items[i].readable) accept_pending();
        continue;
      }
      if (conn->dead) continue;
      if (items[i].readable) read_conn(*conn);
      if (!conn->dead && (items[i].writable || conn->woff < conn->wbuf.size())) {
        flush_conn(*conn);
      }
    }
    sweep_dead();
  }
  drain_and_close();
}

void Server::accept_pending() {
  for (;;) {
    ipc::Channel ch = listener_.accept_channel();
    if (!ch.alive()) return;
    if (static_cast<int>(conns_.size()) >= cfg_.max_connections) {
      ++metrics_.counter("serve.conns_refused");
      continue;  // ch closes on scope exit: connection shed at the door.
    }
    ch.set_nonblocking();
    auto conn = std::make_unique<Conn>();
    conn->ch = std::move(ch);
    conns_.push_back(std::move(conn));
    ++metrics_.counter("serve.conns_accepted");
  }
}

void Server::read_conn(Conn& conn) {
  // Bound the bytes consumed per poll round so one firehose client cannot
  // starve the loop; the rest stays in the kernel buffer for the next round.
  constexpr std::size_t kMaxRoundBytes = 1u << 20;
  std::size_t got = 0;
  while (got < kMaxRoundBytes) {
    const int r = conn.ch.read_some(conn.rbuf);
    if (r < 0) {
      conn.dead = true;  // EOF: the tenant is gone; sessions die in sweep.
      break;
    }
    if (r == 0) break;  // Drained for now.
    got += static_cast<std::size_t>(r);
    metrics_.counter("serve.bytes_rx") += static_cast<std::uint64_t>(r);
  }
  if (!pump_frames(conn)) {
    conn.dead = true;
    ++metrics_.counter("serve.conns_killed_protocol");
  }
}

bool Server::pump_frames(Conn& conn) {
  std::size_t off = 0;
  bool framing_ok = true;
  while (!conn.dead) {
    if (conn.rbuf.size() - off < sizeof(ipc::FrameHeader)) break;
    ipc::FrameHeader h;
    std::memcpy(&h, conn.rbuf.data() + off, sizeof h);
    if (h.size > cfg_.max_frame_payload || h.size > ipc::kMaxFramePayload) {
      framing_ok = false;  // Unresyncable garbage: kill the connection.
      break;
    }
    if (conn.rbuf.size() - off < sizeof h + h.size) break;
    ipc::Frame f;
    f.kind = h.kind;
    f.payload.assign(conn.rbuf.begin() + static_cast<std::ptrdiff_t>(off + sizeof h),
                     conn.rbuf.begin() + static_cast<std::ptrdiff_t>(off + sizeof h + h.size));
    off += sizeof h + h.size;
    ++metrics_.counter("serve.frames_rx");
    dispatch(conn, f);
  }
  if (off > 0) conn.rbuf.erase(conn.rbuf.begin(), conn.rbuf.begin() + static_cast<std::ptrdiff_t>(off));
  return framing_ok;
}

void Server::dispatch(Conn& conn, const ipc::Frame& frame) {
  const auto kind = static_cast<Cmd>(frame.kind);
  if (!conn.helloed) {
    // Handshake-first is part of the framing contract: any other first frame
    // is protocol abuse and drops the connection.
    std::size_t off = 0;
    HelloReq req{};
    bool ok = kind == Cmd::kHello;
    if (ok) {
      try {
        req = ipc::get_pod<HelloReq>(frame.payload, off);
      } catch (const std::exception&) {
        ok = false;
      }
    }
    if (!ok || req.magic != kMagic || req.version != kVersion) {
      conn.dead = true;
      ++metrics_.counter("serve.conns_killed_protocol");
      return;
    }
    conn.helloed = true;
    HelloOk hello;
    hello.max_sessions = static_cast<std::uint32_t>(cfg_.max_sessions);
    hello.active_sessions = static_cast<std::uint32_t>(sessions_.size());
    hello.networks = static_cast<std::uint32_t>(nets_.size());
    reply(conn, Cmd::kHelloOk, &hello, sizeof hello);
    return;
  }

  try {
    std::size_t off = 0;
    switch (kind) {
      case Cmd::kHello: {
        // Re-hello after the handshake is harmless; acknowledge idempotently.
        HelloOk hello;
        hello.max_sessions = static_cast<std::uint32_t>(cfg_.max_sessions);
        hello.active_sessions = static_cast<std::uint32_t>(sessions_.size());
        hello.networks = static_cast<std::uint32_t>(nets_.size());
        reply(conn, Cmd::kHelloOk, &hello, sizeof hello);
        return;
      }
      case Cmd::kCreate: {
        if (draining_ || stop_.load(std::memory_order_relaxed)) {
          throw ServeError(ErrorCode::kShuttingDown, "serve: daemon is draining");
        }
        const auto req = ipc::get_pod<CreateReq>(frame.payload, off);
        if (req.name_len > frame.payload.size() - off) {
          throw ServeError(ErrorCode::kBadRequest, "serve: truncated network name");
        }
        const std::string name(frame.payload.begin() + static_cast<std::ptrdiff_t>(off),
                               frame.payload.begin() +
                                   static_cast<std::ptrdiff_t>(off + req.name_len));
        const auto it = nets_.find(name);
        if (it == nets_.end()) {
          throw ServeError(ErrorCode::kNoSuchNetwork,
                           "serve: no network named '" + name + "'");
        }
        if (static_cast<int>(sessions_.size()) >= cfg_.max_sessions) {
          ++metrics_.counter("serve.admission_refused");
          throw ServeError(ErrorCode::kAdmissionRefused,
                           "serve: session cap reached (max_sessions=" +
                               std::to_string(cfg_.max_sessions) + ")");
        }
        int threads = static_cast<int>(req.threads);
        if (threads == 0) threads = cfg_.default_threads;
        if (threads < 1 || threads > 256) {
          throw ServeError(ErrorCode::kBadRequest, "serve: thread count out of range");
        }
        const std::uint64_t id = next_session_++;
        sessions_.emplace(id, std::make_unique<Session>(it->second, name, threads,
                                                        cfg_.limits));
        conn.sessions.push_back(id);
        ++metrics_.counter("serve.sessions_created");
        CreateOk okr;
        okr.session = id;
        reply(conn, Cmd::kCreateOk, &okr, sizeof okr);
        return;
      }
      case Cmd::kTick: {
        const auto req = ipc::get_pod<TickReq>(frame.payload, off);
        if (!owns(cfg_, conn.sessions, req.session)) {
          throw ServeError(ErrorCode::kNoSuchSession, "serve: unknown session id");
        }
        Session& s = session_of(req.session);
        s.tick(req.nticks, req.record != 0);
        metrics_.counter("serve.ticks_served") += static_cast<std::uint64_t>(req.nticks);
        TickOk okr;
        okr.now = s.now();
        okr.queued = s.queue_depth();
        okr.dropped_total = s.counters().spikes_dropped;
        reply(conn, Cmd::kTickOk, &okr, sizeof okr);
        return;
      }
      case Cmd::kInject: {
        const auto req = ipc::get_pod<InjectReq>(frame.payload, off);
        if (!owns(cfg_, conn.sessions, req.session)) {
          throw ServeError(ErrorCode::kNoSuchSession, "serve: unknown session id");
        }
        const auto events = ipc::get_pod_array<core::InputSpike>(
            frame.payload, off, static_cast<std::size_t>(req.count));
        Session& s = session_of(req.session);
        s.inject(events);
        metrics_.counter("serve.inputs_injected") += req.count;
        reply(conn, Cmd::kAck, nullptr, 0);
        return;
      }
      case Cmd::kReadSpikes: {
        const auto req = ipc::get_pod<ReadReq>(frame.payload, off);
        if (!owns(cfg_, conn.sessions, req.session)) {
          throw ServeError(ErrorCode::kNoSuchSession, "serve: unknown session id");
        }
        Session& s = session_of(req.session);
        // Cap one reply so a huge read request cannot build an unbounded
        // reply buffer in one shot; `remaining` tells the client to loop.
        const std::uint64_t cap = cfg_.max_conn_out_bytes / (2 * sizeof(core::Spike));
        const std::uint64_t want = req.max_spikes < cap ? req.max_spikes : cap;
        std::vector<core::Spike> spikes;
        const std::uint64_t remaining = s.read_spikes(want, spikes);
        std::vector<std::uint8_t> payload;
        payload.reserve(sizeof(SpikesOk) + spikes.size() * sizeof(core::Spike));
        SpikesOk okr;
        okr.count = spikes.size();
        okr.remaining = remaining;
        ipc::put_pod(payload, okr);
        for (const core::Spike& sp : spikes) ipc::put_pod(payload, sp);
        metrics_.counter("serve.spikes_streamed") += spikes.size();
        reply(conn, Cmd::kSpikesOk, payload.data(), payload.size());
        return;
      }
      case Cmd::kCheckpoint: {
        const auto req = ipc::get_pod<SessionReq>(frame.payload, off);
        if (!owns(cfg_, conn.sessions, req.session)) {
          throw ServeError(ErrorCode::kNoSuchSession, "serve: unknown session id");
        }
        std::ostringstream os;
        session_of(req.session).save_checkpoint(os);
        const std::string blob = os.str();
        ++metrics_.counter("serve.checkpoints");
        reply(conn, Cmd::kBlob, blob.data(), blob.size());
        return;
      }
      case Cmd::kRestore: {
        const auto req = ipc::get_pod<SessionReq>(frame.payload, off);
        if (!owns(cfg_, conn.sessions, req.session)) {
          throw ServeError(ErrorCode::kNoSuchSession, "serve: unknown session id");
        }
        std::istringstream is(std::string(
            frame.payload.begin() + static_cast<std::ptrdiff_t>(off), frame.payload.end()));
        session_of(req.session).restore_checkpoint(is);
        ++metrics_.counter("serve.restores");
        reply(conn, Cmd::kAck, nullptr, 0);
        return;
      }
      case Cmd::kDestroy: {
        const auto req = ipc::get_pod<SessionReq>(frame.payload, off);
        if (!owns(cfg_, conn.sessions, req.session)) {
          throw ServeError(ErrorCode::kNoSuchSession, "serve: unknown session id");
        }
        destroy_session(req.session);
        for (std::size_t i = 0; i < conn.sessions.size(); ++i) {
          if (conn.sessions[i] == req.session) {
            conn.sessions.erase(conn.sessions.begin() + static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
        reply(conn, Cmd::kAck, nullptr, 0);
        return;
      }
      case Cmd::kStats: {
        const std::string json = stats_json();
        reply(conn, Cmd::kStatsJson, json.data(), json.size());
        return;
      }
      case Cmd::kShutdown: {
        reply(conn, Cmd::kAck, nullptr, 0);
        draining_ = true;
        stop_.store(true, std::memory_order_relaxed);
        return;
      }
      default:
        throw ServeError(ErrorCode::kBadRequest, "serve: unknown command kind");
    }
  } catch (const ServeError& e) {
    reply_error(conn, e.code(), e.what());
  } catch (const std::exception& e) {
    // Bounds-checked decoding (ipc::get_pod) and simulator-side validation
    // land here: the command dies with an error reply, the daemon lives.
    reply_error(conn, ErrorCode::kBadRequest, e.what());
  }
}

void Server::reply(Conn& conn, Cmd kind, const void* payload, std::size_t size) {
  const ipc::FrameHeader h{static_cast<std::uint32_t>(kind),
                           static_cast<std::uint32_t>(size)};
  const auto* hp = reinterpret_cast<const std::uint8_t*>(&h);
  conn.wbuf.insert(conn.wbuf.end(), hp, hp + sizeof h);
  if (size > 0) {
    const auto* pp = static_cast<const std::uint8_t*>(payload);
    conn.wbuf.insert(conn.wbuf.end(), pp, pp + size);
  }
  ++metrics_.counter("serve.frames_tx");
  metrics_.counter("serve.bytes_tx") += sizeof h + size;
  if (conn.wbuf.size() - conn.woff > cfg_.max_conn_out_bytes) {
    // Slow-client shedding: the tenant is not draining replies; evicting it
    // (and its sessions) protects every other tenant's latency and the
    // daemon's memory. Graceful degradation, not failure.
    conn.dead = true;
    ++metrics_.counter("serve.conns_evicted_slow");
  }
}

void Server::reply_error(Conn& conn, ErrorCode code, const std::string& msg) {
  const std::vector<std::uint8_t> payload = encode_error(code, msg);
  ++metrics_.counter("serve.errors_replied");
  reply(conn, Cmd::kError, payload.data(), payload.size());
}

void Server::flush_conn(Conn& conn) {
  while (conn.woff < conn.wbuf.size()) {
    const long w = conn.ch.write_some(conn.wbuf.data() + conn.woff,
                                      conn.wbuf.size() - conn.woff);
    if (w < 0) {
      conn.dead = true;
      return;
    }
    if (w == 0) break;  // Kernel buffer full; poll will call us back.
    conn.woff += static_cast<std::size_t>(w);
  }
  if (conn.woff == conn.wbuf.size()) {
    conn.wbuf.clear();
    conn.woff = 0;
  } else if (conn.woff > (1u << 20)) {
    conn.wbuf.erase(conn.wbuf.begin(), conn.wbuf.begin() + static_cast<std::ptrdiff_t>(conn.woff));
    conn.woff = 0;
  }
}

void Server::sweep_dead() {
  for (std::size_t i = 0; i < conns_.size();) {
    if (!conns_[i]->dead && conns_[i]->ch.alive()) {
      ++i;
      continue;
    }
    for (const std::uint64_t id : conns_[i]->sessions) destroy_session(id);
    ++metrics_.counter("serve.conns_closed");
    conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

void Server::drain_and_close() {
  // Flush pending replies best-effort (bounded: a gone client cannot stall
  // shutdown), then destroy every session and release the socket path.
  const std::uint64_t deadline_ns = obs::now_ns() + 500ull * 1000 * 1000;
  for (;;) {
    std::vector<ipc::PollItem> items;
    std::vector<Conn*> item_conn;
    for (const auto& c : conns_) {
      if (c->dead || !c->ch.alive() || c->woff >= c->wbuf.size()) continue;
      ipc::PollItem it;
      it.fd = c->ch.fd();
      it.want_write = true;
      items.push_back(it);
      item_conn.push_back(c.get());
    }
    if (items.empty() || obs::now_ns() >= deadline_ns) break;
    const int rc = ipc::poll_wait(items, 20);
    if (rc < 0) continue;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (items[i].writable || items[i].hangup) flush_conn(*item_conn[i]);
    }
  }
  for (const auto& c : conns_) {
    for (const std::uint64_t id : c->sessions) destroy_session(id);
  }
  conns_.clear();
  // Sessions created by already-swept connections are gone; anything left
  // (defensive) folds into the retired totals too.
  while (!sessions_.empty()) destroy_session(sessions_.begin()->first);
  listener_.close();
}

Session& Server::session_of(std::uint64_t id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw ServeError(ErrorCode::kNoSuchSession, "serve: unknown session id");
  }
  return *it->second;
}

void Server::destroy_session(std::uint64_t id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  fold_session_counters(*it->second);
  sessions_.erase(it);
  ++metrics_.counter("serve.sessions_destroyed");
}

void Server::fold_session_counters(const Session& s) {
  add_stats(retired_stats_, s.stats());
  add_counters(retired_counters_, s.counters());
}

std::string Server::stats_json() const {
  obs::BenchReport report;
  report.name = "serve";
  report.threads = cfg_.max_sessions;
  report.wall_s =
      started_ns_ != 0 ? static_cast<double>(obs::now_ns() - started_ns_) / 1e9 : 0.0;
  report.stats = retired_stats_;
  SessionCounters totals = retired_counters_;
  std::uint64_t queued_now = 0;
  for (const auto& [id, s] : sessions_) {
    add_stats(report.stats, s->stats());
    add_counters(totals, s->counters());
    queued_now += s->queue_depth();
  }
  report.ticks = totals.ticks_served;
  report.metrics = metrics_;
  report.metrics.counter("serve.sessions_active") = sessions_.size();
  report.metrics.counter("serve.connections_active") = conns_.size();
  report.metrics.counter("serve.queue_depth") = queued_now;
  report.metrics.counter("serve.spikes_queued") = totals.spikes_queued;
  report.metrics.counter("serve.spikes_dropped") = totals.spikes_dropped;

  obs::JsonValue doc = obs::report_to_json(report);
  obs::JsonValue list = obs::JsonValue::array();
  for (const auto& [id, s] : sessions_) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("id", obs::JsonValue(static_cast<std::uint64_t>(id)));
    entry.set("net", obs::JsonValue(s->net_name()));
    entry.set("now", obs::JsonValue(static_cast<std::int64_t>(s->now())));
    entry.set("ticks_served", obs::JsonValue(s->counters().ticks_served));
    entry.set("spikes_streamed", obs::JsonValue(s->counters().spikes_streamed));
    entry.set("spikes_dropped", obs::JsonValue(s->counters().spikes_dropped));
    entry.set("inputs_injected", obs::JsonValue(s->counters().inputs_injected));
    entry.set("queue_depth", obs::JsonValue(static_cast<std::uint64_t>(s->queue_depth())));
    entry.set("checkpoints", obs::JsonValue(s->counters().checkpoints));
    entry.set("restores", obs::JsonValue(s->counters().restores));
    list.push_back(std::move(entry));
  }
  doc.set("sessions", std::move(list));
  return doc.to_string(2);
}

}  // namespace nsc::serve
