// Wire protocol of the nsc_serve session daemon (docs/SERVE.md).
//
// Every message is one ipc::Frame: an 8-byte (kind, size) header followed by
// `size` payload bytes over a Unix-domain stream socket. The daemon never
// trusts a byte of it: payload decoding goes through the bounds-checked
// ipc::get_pod helpers, every id/count/tick is validated against the
// session's actual state, and a reply is always either the command's typed
// success frame or one kError frame carrying a stable ErrorCode — so a
// malformed command can kill at most the session that sent it, never the
// daemon (tests/test_serve.cpp drives a hostile-frame corpus through this
// surface).
//
// Connection lifecycle: the first frame on a fresh connection MUST be kHello
// with the right magic+version; anything else is protocol abuse and drops
// the connection (along with any sessions it owns — sessions are owned by
// the connection that created them and die with it). After the handshake,
// command frames may arrive in any order; errors at command level keep the
// connection alive.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "src/core/types.hpp"
#include "src/ipc/channel.hpp"

namespace nsc::serve {

/// Handshake magic ("NSSV") and the protocol revision this build speaks.
inline constexpr std::uint32_t kMagic = 0x4E535356u;
inline constexpr std::uint32_t kVersion = 1;

/// Frame kinds. Client -> daemon commands are < 64, daemon -> client replies
/// are >= 64; the split makes a reflected or mis-directed frame instantly
/// recognizable as abuse.
enum class Cmd : std::uint32_t {
  kHello = 1,       ///< HelloReq. Must be the first frame on a connection.
  kCreate = 2,      ///< CreateReq + network name bytes -> CreateOk | kError.
  kTick = 3,        ///< TickReq -> TickOk | kError.
  kInject = 4,      ///< InjectReq + InputSpike[count] -> kAck | kError.
  kReadSpikes = 5,  ///< ReadReq -> SpikesOk + Spike[count] | kError.
  kCheckpoint = 6,  ///< SessionReq -> kBlob | kError.
  kRestore = 7,     ///< SessionReq + checkpoint bytes -> kAck | kError.
  kDestroy = 8,     ///< SessionReq -> kAck | kError.
  kStats = 9,       ///< (empty) -> kStatsJson. Needs no session.
  kShutdown = 10,   ///< (empty) -> kAck, then the daemon drains and exits.

  kHelloOk = 64,    ///< HelloOk: handshake accepted.
  kAck = 65,        ///< Empty success reply.
  kCreateOk = 66,   ///< CreateOk.
  kTickOk = 67,     ///< TickOk.
  kSpikesOk = 68,   ///< SpikesOk + Spike[count].
  kBlob = 69,       ///< Raw checkpoint bytes (kCheckpoint reply).
  kStatsJson = 70,  ///< UTF-8 "nsc-bench-v1" JSON text.
  kError = 71,      ///< ErrorReply + message bytes.
};

/// Stable error codes (the CLI maps all of them to exit 1; tests assert on
/// specific codes).
enum class ErrorCode : std::uint32_t {
  kBadRequest = 1,        ///< Malformed/truncated payload, bad argument.
  kNoSuchSession = 2,     ///< Unknown or already-destroyed session id.
  kNoSuchNetwork = 3,     ///< kCreate named a network the daemon never loaded.
  kAdmissionRefused = 4,  ///< Session cap reached (or network lint-refused).
  kBadCheckpoint = 5,     ///< kRestore blob rejected; session state unchanged.
  kLimitExceeded = 6,     ///< Per-session input/tick bound exceeded.
  kShuttingDown = 7,      ///< Daemon is draining; no new work accepted.
};

[[nodiscard]] std::string_view error_code_name(ErrorCode code) noexcept;

/// Thrown by session/server command handlers; the dispatch loop turns it
/// into one kError reply on the offending connection.
class ServeError : public std::runtime_error {
 public:
  ServeError(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

// --- POD payload layouts (decoded with ipc::get_pod, so truncation throws
// before any out-of-bounds read). Variable-length tails follow the POD.

struct HelloReq {
  std::uint32_t magic = kMagic;
  std::uint32_t version = kVersion;
};

struct HelloOk {
  std::uint32_t version = kVersion;
  std::uint32_t max_sessions = 0;
  std::uint32_t active_sessions = 0;
  std::uint32_t networks = 0;
};

struct CreateReq {
  std::uint32_t threads = 1;     ///< compass worker threads for the instance.
  std::uint32_t name_len = 0;    ///< Network name bytes following this POD.
};

struct CreateOk {
  std::uint64_t session = 0;
};

struct TickReq {
  std::uint64_t session = 0;
  std::int64_t nticks = 0;
  std::uint32_t record = 1;  ///< 0 = advance without queuing output spikes.
  std::uint32_t pad = 0;
};

struct TickOk {
  std::int64_t now = 0;            ///< Session tick after the command.
  std::uint64_t queued = 0;        ///< Spikes waiting in the session queue.
  std::uint64_t dropped_total = 0; ///< Lifetime queue-overflow drops.
};

struct InjectReq {
  std::uint64_t session = 0;
  std::uint64_t count = 0;  ///< core::InputSpike records following.
};

struct ReadReq {
  std::uint64_t session = 0;
  std::uint64_t max_spikes = 0;  ///< Upper bound on spikes in the reply.
};

struct SpikesOk {
  std::uint64_t count = 0;      ///< core::Spike records following.
  std::uint64_t remaining = 0;  ///< Spikes still queued after this reply.
};

struct SessionReq {
  std::uint64_t session = 0;
};

struct ErrorReply {
  std::uint32_t code = 0;     ///< ErrorCode.
  std::uint32_t msg_len = 0;  ///< Message bytes following this POD.
};

/// Encodes a kError frame payload.
[[nodiscard]] std::vector<std::uint8_t> encode_error(ErrorCode code, const std::string& msg);

/// Decodes a kError payload (used by the client). Tolerates a truncated
/// message tail — the code is the load-bearing part.
[[nodiscard]] ErrorCode decode_error(const std::vector<std::uint8_t>& payload,
                                     std::string& msg_out);

}  // namespace nsc::serve
