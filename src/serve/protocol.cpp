#include "src/serve/protocol.hpp"

namespace nsc::serve {

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kNoSuchSession: return "no-such-session";
    case ErrorCode::kNoSuchNetwork: return "no-such-network";
    case ErrorCode::kAdmissionRefused: return "admission-refused";
    case ErrorCode::kBadCheckpoint: return "bad-checkpoint";
    case ErrorCode::kLimitExceeded: return "limit-exceeded";
    case ErrorCode::kShuttingDown: return "shutting-down";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_error(ErrorCode code, const std::string& msg) {
  std::vector<std::uint8_t> buf;
  const ErrorReply hdr{static_cast<std::uint32_t>(code),
                       static_cast<std::uint32_t>(msg.size())};
  ipc::put_pod(buf, hdr);
  buf.insert(buf.end(), msg.begin(), msg.end());
  return buf;
}

ErrorCode decode_error(const std::vector<std::uint8_t>& payload, std::string& msg_out) {
  msg_out.clear();
  std::size_t off = 0;
  ErrorReply hdr{};
  try {
    hdr = ipc::get_pod<ErrorReply>(payload, off);
  } catch (const std::exception&) {
    return ErrorCode::kBadRequest;
  }
  const std::size_t avail = payload.size() - off;
  const std::size_t n = hdr.msg_len < avail ? hdr.msg_len : avail;
  msg_out.assign(payload.begin() + static_cast<std::ptrdiff_t>(off),
                 payload.begin() + static_cast<std::ptrdiff_t>(off + n));
  return static_cast<ErrorCode>(hdr.code);
}

}  // namespace nsc::serve
