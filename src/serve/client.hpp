// Client side of the nsc_serve session protocol: one blocking RPC per
// method over a framed Channel. Shared by tools/nsc_client and the
// conformance/soak tests so every caller speaks the exact same encoding the
// daemon validates.
//
// Error model: daemon-reported failures surface as the same serve::ServeError
// the daemon threw (stable ErrorCode + message); transport failures (daemon
// gone, reply deadline exceeded) surface as std::runtime_error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/types.hpp"
#include "src/ipc/channel.hpp"
#include "src/serve/protocol.hpp"

namespace nsc::serve {

class Client {
 public:
  /// Wraps an already-connected channel (in-process test harnesses).
  explicit Client(ipc::Channel ch, int reply_deadline_ms = 60000);

  /// Connects to the daemon's socket, retrying until `connect_deadline_ms`
  /// elapses (covers the daemon still binding after spawn); throws
  /// std::runtime_error when the socket never appears.
  [[nodiscard]] static Client connect(const std::string& socket_path,
                                      int connect_deadline_ms = 5000,
                                      int reply_deadline_ms = 60000);

  /// Handshake; must be the first call. Returns the daemon's capacity view.
  HelloOk hello();

  /// Creates a session over a daemon-loaded network (threads = 0 picks the
  /// daemon default). Returns the session id.
  std::uint64_t create(const std::string& net_name, std::uint32_t threads = 0);

  /// Advances the session; with `record`, output spikes queue server-side.
  TickOk tick(std::uint64_t session, core::Tick nticks, bool record = true);

  /// Injects external spikes (absolute ticks, >= the session's now).
  void inject(std::uint64_t session, const std::vector<core::InputSpike>& events);

  /// Drains up to `max_spikes` queued spikes into `out` (appended). Returns
  /// the count still queued server-side.
  std::uint64_t read_spikes(std::uint64_t session, std::uint64_t max_spikes,
                            std::vector<core::Spike>& out);

  /// Drains the whole queue into `out`.
  void read_all_spikes(std::uint64_t session, std::vector<core::Spike>& out);

  /// Full checkpoint blob of the session's simulator.
  std::vector<std::uint8_t> checkpoint(std::uint64_t session);

  /// Restores the session from a blob (see Session::restore_checkpoint).
  void restore(std::uint64_t session, const std::vector<std::uint8_t>& blob);

  void destroy(std::uint64_t session);

  /// "nsc-bench-v1" stats JSON text.
  std::string stats_json();

  /// Asks the daemon to drain and exit.
  void shutdown();

  /// Raw channel access (hostile-frame tests forge their own frames here).
  [[nodiscard]] ipc::Channel& channel() noexcept { return ch_; }

 private:
  /// Sends one frame and receives the reply frame; throws on transport
  /// failure/timeout, converts a kError reply into a ServeError throw, and
  /// verifies the reply kind is `expect`.
  ipc::Frame rpc(Cmd cmd, const std::vector<std::uint8_t>& payload, Cmd expect);

  ipc::Channel ch_;
  int reply_deadline_ms_;
};

}  // namespace nsc::serve
