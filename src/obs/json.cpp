#include "src/obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nsc::obs {

JsonValue& JsonValue::set(std::string key, JsonValue value) {
  kind_ = Kind::Object;
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue* JsonValue::find_path(std::string_view path) const noexcept {
  const JsonValue* cur = this;
  while (cur != nullptr && !path.empty()) {
    const std::size_t dot = path.find('.');
    const std::string_view head = path.substr(0, dot);
    cur = cur->find(head);
    if (dot == std::string_view::npos) break;
    path.remove_prefix(dot + 1);
  }
  return cur;
}

void JsonValue::push_back(JsonValue value) {
  kind_ = Kind::Array;
  arr_.push_back(std::move(value));
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_number(std::string& out, double v, bool is_int, std::int64_t iv) {
  if (is_int) {
    out += std::to_string(iv);
    return;
  }
  if (!std::isfinite(v)) {
    // JSON has no NaN/Inf; emit 0 rather than an invalid document.
    out += '0';
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
    if (std::strtod(shorter, nullptr) == v) {
      out += shorter;
      return;
    }
  }
  out += buf;
}

}  // namespace

void JsonValue::write(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth + 1),
                        ' ');
  const std::string close_pad(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
                              ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Number: append_number(out, num_, is_int_, int_); break;
    case Kind::String:
      out += '"';
      out += json_escape(str_);
      out += '"';
      break;
    case Kind::Array: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        out += pad;
        arr_[i].write(out, indent, depth + 1);
        if (i + 1 < arr_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Kind::Object: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        out += pad;
        out += '"';
        out += json_escape(obj_[i].first);
        out += indent > 0 ? "\": " : "\":";
        obj_[i].second.write(out, indent, depth + 1);
        if (i + 1 < obj_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string JsonValue::to_string(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at byte " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (reports only emit ASCII, but
          // accept anything a hand-edited file might contain).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_int = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_int = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) fail("bad number");
    const std::string tok(text_.substr(start, pos_ - start));
    errno = 0;
    if (is_int) {
      char* end = nullptr;
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (end == tok.c_str() + tok.size() && errno == 0) {
        return JsonValue(static_cast<std::int64_t>(v));
      }
    }
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("bad number");
    return JsonValue(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).parse_document(); }

JsonValue load_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_json(buf.str());
}

}  // namespace nsc::obs
