// JSON metrics reports ("nsc-bench-v1"): the machine-readable counterpart of
// the benches' ASCII tables (mirrors util/csv's role for plotting). Every
// bench target and tools/nsc_run can emit a BENCH_<name>.json with
// throughput, kernel counters and the per-phase wall-time breakdown;
// tools/nsc_bench_diff compares two such files and gates CI on regressions.
// Schema documented in docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/network.hpp"
#include "src/obs/json.hpp"
#include "src/obs/obs.hpp"

namespace nsc::obs {

/// One benchmark run, ready for serialization.
struct BenchReport {
  std::string name;             ///< Workload name (becomes BENCH_<name>.json).
  std::string git_sha;          ///< Defaults to build_git_sha() when empty.
  int threads = 1;              ///< Worker/process count of the run.
  std::uint64_t ticks = 0;      ///< Simulated ticks measured.
  double wall_s = 0.0;          ///< Wall-clock seconds of the measured run.
  double load_imbalance = 0.0;  ///< Max/mean per-partition compute time (0 = n/a).
  core::KernelStats stats;      ///< Kernel counters of the measured run.
  Registry metrics;             ///< Per-phase timings + named counters.

  [[nodiscard]] double ticks_per_s() const noexcept {
    return wall_s > 0.0 ? static_cast<double>(ticks) / wall_s : 0.0;
  }
  [[nodiscard]] double sops_per_s() const noexcept {
    return wall_s > 0.0 ? static_cast<double>(stats.sops) / wall_s : 0.0;
  }
};

/// Git SHA baked in at configure time (NSC_GIT_SHA), overridable with the
/// NSC_GIT_SHA environment variable; "unknown" when neither is set.
[[nodiscard]] std::string build_git_sha();

/// `BENCH_<name>.json`, placed in $NSC_BENCH_JSON_DIR when set (created by
/// the caller), else the current directory.
[[nodiscard]] std::string default_report_path(const std::string& name);

/// Serializes the report (schema "nsc-bench-v1", stable key order).
[[nodiscard]] JsonValue report_to_json(const BenchReport& report);

/// Writes the report to `path`; throws std::runtime_error on I/O failure.
void write_bench_report(const std::string& path, const BenchReport& report);

/// One compared metric of a report diff.
struct DiffEntry {
  std::string metric;
  double baseline = 0.0;
  double candidate = 0.0;
  double ratio = 0.0;  ///< candidate / baseline.
  bool regression = false;
};

/// Result of comparing two reports.
struct DiffResult {
  std::vector<DiffEntry> entries;
  bool regressed = false;
};

/// Compares two parsed "nsc-bench-v1" documents. Throughput metrics
/// (ticks_per_s, sops_per_s) regress when candidate < baseline / threshold;
/// with `compare_phases`, per-phase mean wall time per call regresses when
/// candidate > baseline * threshold. Metrics missing on either side (or with
/// a zero baseline) are skipped, so reports from different schema revisions
/// still diff. `threshold` must be >= 1.
[[nodiscard]] DiffResult diff_reports(const JsonValue& baseline, const JsonValue& candidate,
                                      double threshold, bool compare_phases = false);

}  // namespace nsc::obs
