// Minimal JSON tree: build, serialize, parse. Covers exactly what the
// metrics reports need — objects with ordered keys, arrays, finite numbers,
// strings with standard escapes, booleans, null. No external dependency;
// the comparator tool (nsc_bench_diff) parses with this same code, so every
// report the emitter writes is round-trippable by construction.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nsc::obs {

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;  ///< null
  JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
  JsonValue(double v) : kind_(Kind::Number), num_(v) {}
  JsonValue(std::int64_t v)
      : kind_(Kind::Number), num_(static_cast<double>(v)), int_(v), is_int_(true) {}
  JsonValue(std::uint64_t v)
      : kind_(Kind::Number), num_(static_cast<double>(v)),
        int_(static_cast<std::int64_t>(v)), is_int_(true) {}
  JsonValue(int v) : JsonValue(static_cast<std::int64_t>(v)) {}
  JsonValue(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
  JsonValue(const char* s) : kind_(Kind::String), str_(s) {}

  [[nodiscard]] static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
  }
  [[nodiscard]] static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::Object; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::Number; }
  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] double as_double() const noexcept { return num_; }
  [[nodiscard]] std::int64_t as_int() const noexcept {
    return is_int_ ? int_ : static_cast<std::int64_t>(num_);
  }
  [[nodiscard]] const std::string& as_string() const noexcept { return str_; }
  [[nodiscard]] const std::vector<JsonValue>& items() const noexcept { return arr_; }
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members() const noexcept {
    return obj_;
  }

  /// Object: sets `key` (replacing an existing entry, else appending).
  JsonValue& set(std::string key, JsonValue value);
  /// Object: member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;
  /// Nested lookup along a '.'-separated path ("phases.compute.total_ns").
  [[nodiscard]] const JsonValue* find_path(std::string_view path) const noexcept;
  /// Array: appends an element.
  void push_back(JsonValue value);

  /// Serializes with `indent` spaces per level (0 = compact single line).
  /// Non-finite numbers serialize as 0 so the output is always valid JSON.
  [[nodiscard]] std::string to_string(int indent = 2) const;

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool is_int_ = false;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// Escapes `s` for embedding in a JSON string literal (without quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Parses a complete JSON document; throws std::runtime_error (with byte
/// offset) on malformed input or trailing garbage.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Loads and parses a JSON file; throws std::runtime_error on I/O failure.
[[nodiscard]] JsonValue load_json_file(const std::string& path);

}  // namespace nsc::obs
