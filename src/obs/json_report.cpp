#include "src/obs/json_report.hpp"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

#ifndef NSC_GIT_SHA
#define NSC_GIT_SHA "unknown"
#endif

namespace nsc::obs {

std::string build_git_sha() {
  const char* env = std::getenv("NSC_GIT_SHA");
  if (env != nullptr && env[0] != '\0') return env;
  return NSC_GIT_SHA;
}

std::string default_report_path(const std::string& name) {
  const char* dir = std::getenv("NSC_BENCH_JSON_DIR");
  const std::string file = "BENCH_" + name + ".json";
  if (dir != nullptr && dir[0] != '\0') return std::string(dir) + "/" + file;
  return file;
}

JsonValue report_to_json(const BenchReport& report) {
  JsonValue root = JsonValue::object();
  root.set("schema", "nsc-bench-v1");
  root.set("name", report.name);
  root.set("git_sha", report.git_sha.empty() ? build_git_sha() : report.git_sha);
  root.set("threads", report.threads);
  root.set("ticks", report.ticks);
  root.set("wall_s", report.wall_s);
  root.set("ticks_per_s", report.ticks_per_s());
  root.set("sops_per_s", report.sops_per_s());
  root.set("load_imbalance", report.load_imbalance);

  JsonValue stats = JsonValue::object();
  stats.set("spikes", report.stats.spikes);
  stats.set("sops", report.stats.sops);
  stats.set("axon_events", report.stats.axon_events);
  stats.set("neuron_updates", report.stats.neuron_updates);
  stats.set("dropped_spikes", report.stats.dropped_spikes);
  stats.set("hop_sum", report.stats.hop_sum);
  stats.set("interchip_crossings", report.stats.interchip_crossings);
  root.set("stats", std::move(stats));

  JsonValue phases = JsonValue::object();
  for (const auto& [name, acc] : report.metrics.phases()) {
    JsonValue p = JsonValue::object();
    p.set("calls", acc.calls);
    p.set("total_ns", acc.total_ns);
    p.set("min_ns", acc.min_ns);
    p.set("max_ns", acc.max_ns);
    p.set("mean_ns", acc.mean_ns());
    phases.set(name, std::move(p));
  }
  root.set("phases", std::move(phases));

  JsonValue counters = JsonValue::object();
  for (const auto& [name, v] : report.metrics.counters()) {
    counters.set(name, v);
  }
  root.set("counters", std::move(counters));
  return root;
}

void write_bench_report(const std::string& path, const BenchReport& report) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << report_to_json(report).to_string() << '\n';
  if (!out) throw std::runtime_error("short write to " + path);
}

namespace {

double number_at(const JsonValue& doc, std::string_view path, bool* ok) {
  const JsonValue* v = doc.find_path(path);
  *ok = v != nullptr && v->is_number();
  return *ok ? v->as_double() : 0.0;
}

/// Appends the comparison of one metric present in both documents.
void compare_metric(const JsonValue& base, const JsonValue& cand, const std::string& path,
                    double threshold, bool higher_is_better, DiffResult& out) {
  bool ok_b = false, ok_c = false;
  const double b = number_at(base, path, &ok_b);
  const double c = number_at(cand, path, &ok_c);
  if (!ok_b || !ok_c || b <= 0.0) return;
  DiffEntry e;
  e.metric = path;
  e.baseline = b;
  e.candidate = c;
  e.ratio = c / b;
  e.regression = higher_is_better ? (c * threshold < b) : (c > b * threshold);
  out.regressed = out.regressed || e.regression;
  out.entries.push_back(std::move(e));
}

}  // namespace

DiffResult diff_reports(const JsonValue& baseline, const JsonValue& candidate, double threshold,
                        bool compare_phases) {
  if (threshold < 1.0) throw std::runtime_error("diff threshold must be >= 1");
  DiffResult out;
  compare_metric(baseline, candidate, "ticks_per_s", threshold, /*higher_is_better=*/true, out);
  compare_metric(baseline, candidate, "sops_per_s", threshold, /*higher_is_better=*/true, out);
  if (!compare_phases) return out;
  const JsonValue* phases = baseline.find("phases");
  if (phases == nullptr || !phases->is_object()) return out;
  for (const auto& [name, acc] : phases->members()) {
    (void)acc;
    compare_metric(baseline, candidate, "phases." + name + ".mean_ns", threshold,
                   /*higher_is_better=*/false, out);
  }
  return out;
}

}  // namespace nsc::obs
