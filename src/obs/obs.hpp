// Observability substrate: monotonic phase timers and named counters that
// the simulators, benches and tools fold into machine-readable metrics
// reports (docs/OBSERVABILITY.md).
//
// Compile-time toggle: NSC_OBS (CMake option NEUROSYN_OBS, default ON).
// With NSC_OBS=0 every ScopedTimer is a no-op the optimizer deletes, so the
// kernel hot loop carries zero instrumentation cost; the Registry and report
// types stay available so reporting code compiles either way. A runtime
// toggle (each simulator's `collect_phase_metrics` flag) additionally gates
// the clock reads without recompiling.
//
// Instrumentation must never perturb simulated behaviour: timers and
// counters are observation-only, and tests/test_obs.cpp asserts that runs
// with metrics on and off are spike-for-spike identical.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <utility>

#ifndef NSC_OBS
#define NSC_OBS 1
#endif

namespace nsc::obs {

/// True when instrumentation is compiled in (NSC_OBS != 0).
inline constexpr bool kEnabled = NSC_OBS != 0;

/// Monotonic wall clock in nanoseconds (std::chrono::steady_clock).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// Accumulated wall time of one named phase.
struct PhaseAccum {
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;

  void add(std::uint64_t ns) noexcept {
    if (calls == 0 || ns < min_ns) min_ns = ns;
    if (ns > max_ns) max_ns = ns;
    total_ns += ns;
    ++calls;
  }

  [[nodiscard]] double mean_ns() const noexcept {
    return calls != 0 ? static_cast<double>(total_ns) / static_cast<double>(calls) : 0.0;
  }
};

/// Ordered name → accumulator registry. Lookup is linear over a handful of
/// entries; hot paths resolve their PhaseAccum/counter reference once. The
/// returned references stay valid for the registry's lifetime: entries live
/// in deques (stable addresses under growth) and reset() zeroes values in
/// place without dropping entries.
class Registry {
 public:
  /// Returns the accumulator for `name`, creating it on first use.
  PhaseAccum& phase(std::string_view name);
  /// Returns the counter for `name`, creating it (at zero) on first use.
  std::uint64_t& counter(std::string_view name);

  [[nodiscard]] const std::deque<std::pair<std::string, PhaseAccum>>& phases() const noexcept {
    return phases_;
  }
  [[nodiscard]] const std::deque<std::pair<std::string, std::uint64_t>>& counters()
      const noexcept {
    return counters_;
  }
  [[nodiscard]] const PhaseAccum* find_phase(std::string_view name) const noexcept;
  /// Counter value, or 0 if the counter was never created.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const noexcept;

  /// Folds `other` into this registry: phases merge call counts, totals and
  /// min/max envelopes; counters add. Entries missing here are created.
  void merge(const Registry& other);

  /// Zeroes every accumulator and counter in place, preserving entries and
  /// insertion order so previously resolved references remain valid.
  void reset() noexcept;

 private:
  std::deque<std::pair<std::string, PhaseAccum>> phases_;
  std::deque<std::pair<std::string, std::uint64_t>> counters_;
};

/// RAII phase timer. Pass nullptr to disable at runtime; with NSC_OBS=0 the
/// constructor and destructor collapse to nothing.
class ScopedTimer {
 public:
  explicit ScopedTimer(PhaseAccum* acc) noexcept
      : acc_(kEnabled ? acc : nullptr), t0_(acc_ != nullptr ? now_ns() : 0) {}
  ~ScopedTimer() {
    if (acc_ != nullptr) acc_->add(now_ns() - t0_);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  PhaseAccum* acc_;
  std::uint64_t t0_;
};

}  // namespace nsc::obs
