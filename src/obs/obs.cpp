#include "src/obs/obs.hpp"

#include <algorithm>
#include <chrono>

namespace nsc::obs {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

PhaseAccum& Registry::phase(std::string_view name) {
  for (auto& [n, acc] : phases_) {
    if (n == name) return acc;
  }
  phases_.emplace_back(std::string(name), PhaseAccum{});
  return phases_.back().second;
}

std::uint64_t& Registry::counter(std::string_view name) {
  for (auto& [n, v] : counters_) {
    if (n == name) return v;
  }
  counters_.emplace_back(std::string(name), 0);
  return counters_.back().second;
}

const PhaseAccum* Registry::find_phase(std::string_view name) const noexcept {
  for (const auto& [n, acc] : phases_) {
    if (n == name) return &acc;
  }
  return nullptr;
}

std::uint64_t Registry::counter_value(std::string_view name) const noexcept {
  for (const auto& [n, v] : counters_) {
    if (n == name) return v;
  }
  return 0;
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, theirs] : other.phases_) {
    PhaseAccum& mine = phase(name);
    if (theirs.calls == 0) continue;
    if (mine.calls == 0) {
      mine = theirs;
      continue;
    }
    mine.min_ns = std::min(mine.min_ns, theirs.min_ns);
    mine.max_ns = std::max(mine.max_ns, theirs.max_ns);
    mine.total_ns += theirs.total_ns;
    mine.calls += theirs.calls;
  }
  for (const auto& [name, v] : other.counters_) {
    counter(name) += v;
  }
}

void Registry::reset() noexcept {
  for (auto& [n, acc] : phases_) acc = PhaseAccum{};
  for (auto& [n, v] : counters_) v = 0;
}

}  // namespace nsc::obs
