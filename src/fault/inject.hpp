// Construction-time (deployment) fault injection: the "dead on arrival"
// scenario from paper §III-C, where a fraction of fabricated cores never
// worked and the network is built around them. Distinct from mid-run
// campaigns (campaign.hpp), which kill healthy cores while the kernel runs.
#pragma once

#include <cstdint>

#include "src/core/network.hpp"

namespace nsc::fault {

/// Disables `fraction` of cores (deterministically by seed) and silences
/// their neurons; neurons targeting a faulted core are retargeted to the
/// next healthy core so the network remains valid. At least one core is
/// always left alive. Returns the number of cores disabled.
int inject_faults(core::Network& net, double fraction, std::uint64_t seed);

}  // namespace nsc::fault
