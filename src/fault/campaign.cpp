#include "src/fault/campaign.hpp"

#include <algorithm>

#include "src/util/prng.hpp"

namespace nsc::fault {

void Campaign::finalize() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.tick < b.tick; });
}

Campaign Campaign::random(const core::Geometry& g, int n_core_faults, int n_link_faults,
                          core::Tick max_tick, std::uint64_t seed) {
  Campaign c;
  util::Xoshiro rng(seed);
  const auto ncores = static_cast<std::uint64_t>(g.total_cores());
  const int max_core_faults = static_cast<int>(ncores) - 1;
  n_core_faults = std::min(n_core_faults, max_core_faults);
  std::vector<std::uint8_t> used_core(ncores, 0);
  for (int i = 0; i < n_core_faults; ++i) {
    std::uint64_t pick = rng.next_below(ncores);
    while (used_core[pick] != 0) pick = (pick + 1) % ncores;
    used_core[pick] = 1;
    const auto tick = static_cast<core::Tick>(1 + rng.next_below(static_cast<std::uint64_t>(
                                                     max_tick > 0 ? max_tick : 1)));
    c.fail_core_at(tick, static_cast<core::CoreId>(pick));
  }
  if (g.chips() > 1) {
    const auto nlinks = static_cast<std::uint64_t>(g.chips()) * 4;
    std::vector<std::uint8_t> used_link(nlinks, 0);
    n_link_faults = std::min<int>(n_link_faults, static_cast<int>(nlinks));
    for (int i = 0; i < n_link_faults; ++i) {
      std::uint64_t pick = rng.next_below(nlinks);
      while (used_link[pick] != 0) pick = (pick + 1) % nlinks;
      used_link[pick] = 1;
      const auto tick = static_cast<core::Tick>(1 + rng.next_below(static_cast<std::uint64_t>(
                                                       max_tick > 0 ? max_tick : 1)));
      c.fail_link_at(tick, static_cast<int>(pick / 4), static_cast<int>(pick % 4));
    }
  }
  c.finalize();
  return c;
}

int run_with_campaign(core::Simulator& sim, core::Tick nticks, const core::InputSchedule* inputs,
                      core::SpikeSink* sink, const Campaign& campaign) {
  const core::Tick end = sim.now() + nticks;
  int applied = 0;
  for (const FaultEvent& e : campaign.events()) {
    if (e.tick < sim.now()) continue;  // before our window: already applied
    if (e.tick >= end) break;          // beyond the horizon: stays pending
    if (e.tick > sim.now()) sim.run(e.tick - sim.now(), inputs, sink);
    bool ok = false;
    switch (e.kind) {
      case FaultKind::kCore:
        ok = sim.fail_core(static_cast<core::CoreId>(e.target));
        break;
      case FaultKind::kLink:
        ok = sim.fail_link(static_cast<int>(e.target / 4), static_cast<int>(e.target % 4));
        break;
      case FaultKind::kRankKill:
        ok = sim.fail_rank(static_cast<int>(e.target), /*hang=*/false);
        break;
      case FaultKind::kRankHang:
        ok = sim.fail_rank(static_cast<int>(e.target), /*hang=*/true);
        break;
    }
    if (ok) ++applied;
  }
  if (sim.now() < end) sim.run(end - sim.now(), inputs, sink);
  return applied;
}

}  // namespace nsc::fault
