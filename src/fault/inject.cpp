#include "src/fault/inject.hpp"

#include "src/util/prng.hpp"

namespace nsc::fault {

int inject_faults(core::Network& net, double fraction, std::uint64_t seed) {
  util::Xoshiro rng(seed);
  const auto ncores = static_cast<core::CoreId>(net.geom.total_cores());
  int faulted = 0;
  for (core::CoreId c = 0; c < ncores; ++c) {
    if (rng.next_double() >= fraction) continue;
    net.core(c).disabled = 1;
    for (auto& p : net.core(c).neuron) p.enabled = 0;
    ++faulted;
  }
  if (faulted == static_cast<int>(ncores)) {
    net.core(0).disabled = 0;  // keep at least one core alive
    --faulted;
  }
  for (auto& cs : net.cores) {
    if (cs.disabled) continue;
    for (auto& p : cs.neuron) {
      if (!p.target.valid()) continue;
      core::CoreId t = p.target.core;
      while (net.core(t).disabled) t = (t + 1) % ncores;
      p.target.core = t;
    }
  }
  return faulted;
}

}  // namespace nsc::fault
