// Mid-run fault campaigns: a deterministic, seeded schedule of core and
// inter-chip link failures applied at tick boundaries while the kernel
// runs (docs/RESILIENCE.md).
//
// A campaign is pure data — (tick, kind, target) triples — and the runner
// drives any core::Simulator through it by splitting run() into segments
// around each event. Because events land only at tick boundaries and both
// kernel expressions implement the same mid-run drop rule, a fixed
// (network, inputs, campaign) triple produces identical spike trains on
// TrueNorth and Compass at any thread count, and a checkpoint taken
// mid-campaign resumes without replaying already-applied events.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/network.hpp"
#include "src/core/types.hpp"

namespace nsc::fault {

enum class FaultKind : std::uint8_t {
  kCore = 0,      ///< Kill one core; target = CoreId.
  kLink = 1,      ///< Kill one directed inter-chip link; target = chip * 4 + dir.
  kRankKill = 2,  ///< SIGKILL one rank process; target = rank.
  kRankHang = 3,  ///< SIGSTOP one rank process (silent, fds open); target = rank.
};

struct FaultEvent {
  core::Tick tick = 0;  ///< Applied at the boundary before this tick runs.
  FaultKind kind = FaultKind::kCore;
  std::uint32_t target = 0;
};

/// An ordered schedule of fault events. Build with the fluent helpers (or
/// random()), then finalize() before running.
class Campaign {
 public:
  Campaign& fail_core_at(core::Tick tick, core::CoreId c) {
    events_.push_back({tick, FaultKind::kCore, static_cast<std::uint32_t>(c)});
    return *this;
  }
  Campaign& fail_link_at(core::Tick tick, int chip, int dir) {
    events_.push_back(
        {tick, FaultKind::kLink,
         static_cast<std::uint32_t>(chip) * 4 + static_cast<std::uint32_t>(dir)});
    return *this;
  }
  /// Process-level events: dispatch to Simulator::fail_rank, which only the
  /// distributed backends implement — on a single-process simulator they are
  /// no-ops, so the very same campaign is its own fault-free reference.
  Campaign& kill_rank_at(core::Tick tick, int rank) {
    events_.push_back({tick, FaultKind::kRankKill, static_cast<std::uint32_t>(rank)});
    return *this;
  }
  Campaign& hang_rank_at(core::Tick tick, int rank) {
    events_.push_back({tick, FaultKind::kRankHang, static_cast<std::uint32_t>(rank)});
    return *this;
  }

  /// Stable-sorts the schedule by tick (insertion order breaks ties).
  void finalize();

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept { return events_; }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// Seeded random campaign: `n_core_faults` distinct cores (capped at
  /// total_cores - 1 so the mesh never dies entirely) and `n_link_faults`
  /// distinct directed links (skipped on single-chip meshes), at uniform
  /// ticks in [1, max_tick]. Already finalized.
  static Campaign random(const core::Geometry& g, int n_core_faults, int n_link_faults,
                         core::Tick max_tick, std::uint64_t seed);

 private:
  std::vector<FaultEvent> events_;
};

/// Runs `sim` forward `nticks` ticks, applying every campaign event whose
/// tick falls inside [sim.now(), sim.now() + nticks) at its tick boundary.
/// Events before sim.now() are skipped (already applied — this is what makes
/// a checkpoint resumed mid-campaign line up with the uninterrupted run);
/// events at or beyond the horizon stay pending for a later call. Returns
/// the number of events that actually took effect (fail_* returned true).
int run_with_campaign(core::Simulator& sim, core::Tick nticks, const core::InputSchedule* inputs,
                      core::SpikeSink* sink, const Campaign& campaign);

}  // namespace nsc::fault
